//! The experiment driver: describe a co-run, execute it, read results.

use flep_gpu_sim::{GpuConfig, GpuDevice, SwapManager, SwapStats};
use flep_sim_core::{RunOutcome, SimTime, Simulation, Span};

/// Default event budget for a co-run: far above any legitimate experiment
/// (the heaviest FFS horizon runs dispatch a few million events), so the
/// only way to hit it is a genuine event feedback loop — which then aborts
/// with diagnostics instead of hanging the harness.
pub const DEFAULT_EVENT_BUDGET: u64 = 1_000_000_000;

use crate::job::{JobRecord, JobSpec};
use crate::world::{Policy, SystemEvent, SystemWorld};

/// A complete co-run description.
///
/// # Example
///
/// ```
/// use flep_gpu_sim::GpuConfig;
/// use flep_runtime::{CoRun, JobSpec, KernelProfile, Policy};
/// use flep_sim_core::SimTime;
/// use flep_workloads::{Benchmark, BenchmarkId, InputClass};
///
/// let lo = KernelProfile::of(&Benchmark::get(BenchmarkId::Nn), InputClass::Large);
/// let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Spmv), InputClass::Small);
/// let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
///     .job(JobSpec::new(lo, SimTime::ZERO).with_priority(1))
///     .job(JobSpec::new(hi, SimTime::from_us(10)).with_priority(2))
///     .run();
/// // The high-priority kernel preempts the long-running one and finishes
/// // long before it.
/// let hi_done = result.jobs[1].completed.unwrap();
/// let lo_done = result.jobs[0].completed.unwrap();
/// assert!(hi_done < lo_done);
/// ```
#[derive(Debug)]
pub struct CoRun {
    config: GpuConfig,
    policy: Policy,
    jobs: Vec<JobSpec>,
    horizon: Option<SimTime>,
    swap: Option<SwapManager>,
    span_trace: bool,
}

impl CoRun {
    /// Starts an empty co-run under a policy.
    #[must_use]
    pub fn new(config: GpuConfig, policy: Policy) -> Self {
        CoRun {
            config,
            policy,
            jobs: Vec::new(),
            horizon: None,
            swap: None,
            span_trace: false,
        }
    }

    /// Records every CTA-residency interval as a [`Span`] in the result.
    /// Off by default so long runs (FFS horizons) don't grow an unbounded
    /// span list; required for [`CoRunResult::gpu_share`] and timeline
    /// rendering. Per-owner busy totals are collected either way.
    #[must_use]
    pub fn with_span_trace(mut self) -> Self {
        self.span_trace = true;
        self
    }

    /// Adds a job (builder style).
    #[must_use]
    pub fn job(mut self, spec: JobSpec) -> Self {
        self.jobs.push(spec);
        self
    }

    /// Sets an experiment horizon: looping jobs stop re-arriving at this
    /// time and the simulation ends once in-flight work drains.
    #[must_use]
    pub fn horizon(mut self, at: SimTime) -> Self {
        self.horizon = Some(at);
        self
    }

    /// Enables GPUSwap-style device-memory oversubscription: jobs with a
    /// declared working set pay swap-in time when their data is not
    /// resident (§8's planned integration).
    #[must_use]
    pub fn with_swap(mut self, swap: SwapManager) -> Self {
        self.swap = Some(swap);
        self
    }

    /// Executes the co-run to completion.
    ///
    /// # Panics
    ///
    /// Panics if a kernel is rejected by the device (unlaunchable CTA
    /// shapes) — co-run specs are expected to be valid — or if the run
    /// exceeds [`DEFAULT_EVENT_BUDGET`] dispatched events, which indicates
    /// a runaway event feedback loop rather than a legitimate workload.
    #[must_use]
    pub fn run(self) -> CoRunResult {
        let arrivals: Vec<SimTime> = self.jobs.iter().map(|j| j.arrival).collect();
        let mut device = GpuDevice::new(self.config);
        device.set_span_collection(self.span_trace);
        let mut world = SystemWorld::new(device, self.policy, self.jobs, self.horizon);
        if let Some(swap) = self.swap {
            world.set_swap(swap);
        }
        let mut sim = Simulation::new(world);
        for (idx, at) in arrivals.into_iter().enumerate() {
            sim.schedule_at(at, SystemEvent::Arrival(idx));
        }
        let end_time = match sim.run_with_budget(DEFAULT_EVENT_BUDGET) {
            RunOutcome::Completed(t) => t,
            RunOutcome::BudgetExhausted {
                now,
                dispatched,
                pending,
            } => panic!(
                "co-run exceeded the {DEFAULT_EVENT_BUDGET}-event budget — runaway event \
                 feedback loop? (virtual time {now}, {dispatched} events dispatched, \
                 {pending} pending)"
            ),
        };
        let swap_stats = sim.world().swap_stats();
        let (jobs, busy_spans, busy_totals) = sim.into_world().into_records();
        CoRunResult {
            jobs,
            busy_spans,
            busy_totals,
            end_time,
            swap_stats,
        }
    }
}

/// Results of a co-run.
#[derive(Debug, Clone)]
pub struct CoRunResult {
    /// Per-job records, in submission order.
    pub jobs: Vec<JobRecord>,
    /// CTA-residency spans (owner = job index) for GPU-share accounting.
    /// Empty unless the co-run opted in via [`CoRun::with_span_trace`].
    pub busy_spans: Vec<Span>,
    /// Total busy GPU time per job index, collected on every run.
    pub busy_totals: Vec<(u64, SimTime)>,
    /// When the last event fired.
    pub end_time: SimTime,
    /// Swap statistics, when oversubscription was enabled.
    pub swap_stats: Option<SwapStats>,
}

impl CoRunResult {
    /// Job `idx`'s share of all busy GPU time within `[from, to)`.
    /// Requires [`CoRun::with_span_trace`]; returns 0 otherwise.
    #[must_use]
    pub fn gpu_share(&self, idx: usize, from: SimTime, to: SimTime) -> f64 {
        let total: SimTime = self.busy_spans.iter().map(|s| s.clipped(from, to)).sum();
        let own: SimTime = self
            .busy_spans
            .iter()
            .filter(|s| s.owner == idx as u64)
            .map(|s| s.clipped(from, to))
            .sum();
        own.ratio(total)
    }

    /// Total busy GPU time attributed to job `idx` over the whole run.
    /// Backed by the always-on per-owner totals, so it works without span
    /// tracing.
    #[must_use]
    pub fn busy_time(&self, idx: usize) -> SimTime {
        self.busy_totals
            .iter()
            .find(|(owner, _)| *owner == idx as u64)
            .map_or(SimTime::ZERO, |&(_, total)| total)
    }
}
