//! Per-device health scoring and the circuit breaker.
//!
//! The cluster's fault handling (migrate, restore, re-place) is purely
//! reactive: a device that flaps — hang, restore, hang again — keeps
//! re-entering the placement rotation and keeps eating jobs, paying the
//! full migration cost on every lap. The health layer adds the memory
//! that reactive handling lacks:
//!
//! * **Scoring** — every fault observation decays into an exponentially
//!   weighted moving score ([`DeviceHealth::observe`]); a single hang
//!   fades harmlessly, a burst accumulates.
//! * **Breaker** — when the score crosses
//!   [`HealthConfig::open_threshold`] the breaker opens
//!   ([`BreakerState::Open`]): the device is quarantined out of the
//!   placement rotation even while its [`DeviceState`] says healthy.
//!   After a cooldown (doubling per failed attempt) the cluster launches
//!   a deterministic *probe* grid ([`BreakerState::HalfOpen`]); only a
//!   completed probe closes the breaker and re-admits the device.
//!
//! Everything here is pure bookkeeping driven by the cluster's own
//! deterministic event stream — no randomness, no wall clock — so health
//! decisions replay exactly, and a run with `health: None` never touches
//! any of it.
//!
//! [`DeviceState`]: crate::DeviceState

use flep_sim_core::SimTime;

/// Circuit-breaker position for one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Normal operation: the device is in the placement rotation.
    #[default]
    Closed,
    /// Quarantined: no placements; a probe is (or will be) scheduled.
    Open,
    /// A probe grid is in flight; its completion closes the breaker, any
    /// fresh fault re-opens it.
    HalfOpen,
}

/// Tuning for health scoring and the breaker state machine. Enabled by
/// setting [`ClusterConfig::health`](crate::ClusterConfig::health).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Decay time constant of the fault score: an observation loses
    /// `1/e` of its weight every `tau`.
    pub ewma_tau: SimTime,
    /// Score at (or above) which the breaker opens.
    pub open_threshold: f64,
    /// Cooldown before the first re-admission probe; doubles per failed
    /// probe (capped at 32×).
    pub probe_cooldown: SimTime,
    /// Tasks in the probe grid — small enough to finish fast, real
    /// enough to exercise launch, dispatch, and completion doorbells.
    pub probe_tasks: u64,
    /// Score weight of one device hang.
    pub hang_weight: f64,
    /// Score weight of one transient device loss (seeded or correlated).
    pub loss_weight: f64,
    /// Score weight of one job migrated off the device.
    pub migration_weight: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            ewma_tau: SimTime::from_ms(5),
            open_threshold: 2.0,
            probe_cooldown: SimTime::from_ms(1),
            probe_tasks: 4,
            hang_weight: 1.0,
            loss_weight: 1.5,
            migration_weight: 0.25,
        }
    }
}

impl HealthConfig {
    /// Sets the open threshold (builder style).
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.open_threshold = threshold;
        self
    }

    /// Sets the score decay constant (builder style).
    #[must_use]
    pub fn with_tau(mut self, tau: SimTime) -> Self {
        self.ewma_tau = tau;
        self
    }

    /// Sets the probe cooldown (builder style).
    #[must_use]
    pub fn with_probe_cooldown(mut self, cooldown: SimTime) -> Self {
        self.probe_cooldown = cooldown;
        self
    }

    /// The cooldown before probe attempt `failures + 1`: the base
    /// cooldown doubled per recorded failure, capped at 32×.
    #[must_use]
    pub fn probe_delay(&self, failures: u32) -> SimTime {
        self.probe_cooldown * (1u64 << failures.min(5))
    }
}

/// One device's health record: the decayed fault score plus breaker
/// position. Default state is pristine (score 0, breaker closed).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceHealth {
    /// Exponentially decayed fault score.
    pub score: f64,
    /// When the score was last touched (decay reference point).
    pub last_observed: SimTime,
    /// Breaker position.
    pub breaker: BreakerState,
    /// Probe attempts failed since the breaker last closed (drives the
    /// cooldown backoff).
    pub probe_failures: u32,
    /// Whether a probe event is already scheduled (dedupes re-arming
    /// when faults arrive faster than probes fire).
    pub probe_pending: bool,
}

impl DeviceHealth {
    /// Decays the score to `now` and adds one observation of `weight`.
    /// Returns the updated score.
    pub fn observe(&mut self, now: SimTime, weight: f64, tau: SimTime) -> f64 {
        self.score = self.decayed(now, tau) + weight;
        self.last_observed = now;
        self.score
    }

    /// The score as it stands at `now`, decayed but without adding an
    /// observation.
    #[must_use]
    pub fn decayed(&self, now: SimTime, tau: SimTime) -> f64 {
        let dt = now.saturating_sub(self.last_observed);
        if tau.is_zero() || self.score == 0.0 {
            return if dt.is_zero() { self.score } else { 0.0 };
        }
        self.score * (-(dt.as_ns() as f64) / tau.as_ns() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_accumulate_and_decay() {
        let cfg = HealthConfig::default();
        let mut h = DeviceHealth::default();
        let s1 = h.observe(SimTime::from_ms(1), cfg.hang_weight, cfg.ewma_tau);
        assert!((s1 - 1.0).abs() < 1e-12);
        // A second hang immediately after nearly doubles the score.
        let s2 = h.observe(SimTime::from_ms(1), cfg.hang_weight, cfg.ewma_tau);
        assert!((s2 - 2.0).abs() < 1e-12);
        // After many taus the burst has faded to noise.
        let faded = h.decayed(SimTime::from_ms(100), cfg.ewma_tau);
        assert!(faded < 1e-6, "score should decay: {faded}");
    }

    #[test]
    fn decay_is_monotone_in_elapsed_time() {
        let tau = SimTime::from_ms(5);
        let mut h = DeviceHealth::default();
        h.observe(SimTime::ZERO, 3.0, tau);
        let mut prev = h.decayed(SimTime::ZERO, tau);
        for ms in [1, 2, 5, 10, 50] {
            let s = h.decayed(SimTime::from_ms(ms), tau);
            assert!(s < prev);
            prev = s;
        }
    }

    #[test]
    fn zero_tau_forgets_instantly() {
        let mut h = DeviceHealth::default();
        h.observe(SimTime::from_us(10), 5.0, SimTime::ZERO);
        assert_eq!(h.score, 5.0);
        assert_eq!(h.decayed(SimTime::from_us(11), SimTime::ZERO), 0.0);
    }

    #[test]
    fn probe_delay_doubles_and_caps() {
        let cfg = HealthConfig::default().with_probe_cooldown(SimTime::from_ms(1));
        assert_eq!(cfg.probe_delay(0), SimTime::from_ms(1));
        assert_eq!(cfg.probe_delay(1), SimTime::from_ms(2));
        assert_eq!(cfg.probe_delay(3), SimTime::from_ms(8));
        assert_eq!(cfg.probe_delay(5), SimTime::from_ms(32));
        assert_eq!(cfg.probe_delay(40), SimTime::from_ms(32));
    }
}
