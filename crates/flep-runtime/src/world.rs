//! The FLEP runtime engine (§5): kernel interception, execution logging,
//! and the preemption/scheduling decision loop, co-simulated with the GPU
//! device.

use std::fmt;

use flep_gpu_sim::{
    CollectorHarness, FaultEvent, GpuDevice, GpuEvent, GpuHarness, GridId, GridPhase,
    HostNotification, LaunchError, PreemptSignal, SwapManager, SwapStats,
};
use flep_perfmodel::OverheadProfiler;
use flep_sim_core::{Scheduler, SimTime, Span, World};

use crate::job::{JobRecord, JobSpec, RepeatMode};
use crate::poll::PollWheel;

/// Watchdog configuration: how long a preempt request may go unanswered
/// before the runtime escalates, and how launch retries back off.
///
/// The escalation ladder (tentpole of the robustness work):
///
/// 1. **Flag preempt** — the normal path: write the pinned flag, wait for
///    the victim's CTAs to drain at their next polls.
/// 2. **Forced drain** (at `signalled_at + drain_deadline`) — the
///    kernel-slicing-style fallback: evict at batch boundaries below the
///    poll, which works even when the victim never reads the flag.
/// 3. **Kill + relaunch** (at `signalled_at + 2 * drain_deadline`) —
///    evict unconditionally and resume later from the saved task counter
///    (FLEP's task-pulling makes task granularity the natural resume
///    point, so only the killed in-flight batches are re-executed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// How often the watchdog wakes to check deadlines and reconcile
    /// runtime state against the device.
    pub poll_interval: SimTime,
    /// Drain deadline per escalation level (see type docs).
    pub drain_deadline: SimTime,
    /// Bounded retry count for transiently rejected launches.
    pub max_launch_retries: u32,
    /// Base of the exponential launch-retry backoff (doubles per attempt).
    pub retry_backoff: SimTime,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            poll_interval: SimTime::from_us(200),
            drain_deadline: SimTime::from_ms(2),
            max_launch_retries: 12,
            retry_backoff: SimTime::from_us(20),
        }
    }
}

/// Structured runtime failures, surfaced through
/// [`crate::CoRunResult::errors`] instead of panics on the hot path.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The device permanently rejected a job's launch (invalid shape for
    /// this device); the job is marked failed and never completes.
    LaunchFailed {
        /// Job index.
        job: usize,
        /// The device's rejection.
        error: LaunchError,
    },
    /// A transiently rejected launch exhausted its bounded retries.
    LaunchRetriesExhausted {
        /// Job index.
        job: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A job's declared working set can never fit in device memory, so
    /// swapping cannot make the launch possible.
    SwapUnsatisfiable {
        /// Job index.
        job: usize,
    },
    /// The co-run exceeded its event budget — a runaway event feedback
    /// loop (or an unbounded looping workload without a horizon).
    EventBudgetExhausted {
        /// Virtual time when the budget ran out.
        at: SimTime,
        /// Events dispatched up to that point.
        dispatched: u64,
        /// Events still pending in the queue.
        pending: usize,
    },
    /// A whole device left the cluster: transient loss (it rejoins after
    /// the reset latency) or permanent death. Every grid resident on it
    /// was evicted and handed to the migration path.
    DeviceLost {
        /// The device that was lost.
        device: u32,
        /// Whether the loss is permanent (death) or transient (reset).
        permanent: bool,
    },
    /// A migrated job exhausted the cluster's migration budget (or no
    /// surviving device could host it) and was abandoned.
    MigrationFailed {
        /// Cluster job index.
        job: usize,
        /// Migration attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::LaunchFailed { job, error } => {
                write!(f, "job {job}: launch permanently rejected: {error}")
            }
            RuntimeError::LaunchRetriesExhausted { job, attempts } => {
                write!(
                    f,
                    "job {job}: launch still rejected after {attempts} attempts"
                )
            }
            RuntimeError::SwapUnsatisfiable { job } => {
                write!(f, "job {job}: working set exceeds device memory")
            }
            RuntimeError::EventBudgetExhausted {
                at,
                dispatched,
                pending,
            } => write!(
                f,
                "event budget exhausted at {at} ({dispatched} dispatched, {pending} pending)"
            ),
            RuntimeError::DeviceLost { device, permanent } => {
                let kind = if *permanent { "died" } else { "reset" };
                write!(f, "device {device} {kind}: resident grids evicted")
            }
            RuntimeError::MigrationFailed { job, attempts } => {
                write!(
                    f,
                    "job {job}: abandoned after {attempts} migration attempts"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A recovery the watchdog performed on a job's behalf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Escalation level 2: forced drain at batch boundaries.
    ForcedDrain,
    /// Escalation level 3: kill + relaunch from the saved task counter.
    Killed,
    /// A terminal device notification never arrived; the watchdog rebuilt
    /// it from device state.
    LostNotification,
    /// A transiently rejected launch was scheduled for retry (attempt
    /// number carried).
    LaunchRetry(u32),
    /// The cluster killed the job's device-resident state and relaunched
    /// it on a survivor, resuming from the saved task counter.
    Migrated {
        /// Device the job was evicted from.
        from: u32,
        /// Device it was relaunched on.
        to: u32,
    },
}

/// One watchdog recovery event, in the order they happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// When the recovery action was taken.
    pub at: SimTime,
    /// The job it acted for.
    pub job: usize,
    /// What was done.
    pub action: RecoveryAction,
}

/// The scheduling policy the runtime enforces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// §5.2.1: highest-priority-first with shortest-remaining-time among
    /// equal priorities, preempting only when the switch pays for the
    /// preemption overhead.
    Hpf {
        /// Yield only as many SMs as the waiting kernel needs when it does
        /// not fill the device (spatial preemption); `false` always yields
        /// everything (temporal).
        spatial: bool,
        /// Include the profiled preemption overhead in the preempt-or-not
        /// comparison (the paper does; `false` is the ablation).
        overhead_aware: bool,
        /// Override the number of SMs yielded on a spatial preemption
        /// (Fig. 16's sweep). `None` yields exactly what the waiting grid
        /// needs. Values at or above the SM count degrade to temporal.
        forced_yield: Option<u32>,
    },
    /// §5.2.2: fairness-first weighted round-robin under an overhead
    /// budget. Weights are the jobs' priorities.
    Ffs {
        /// The `max_overhead` constraint bounding context-switch frequency.
        max_overhead: f64,
    },
    /// Baseline: launch original kernels immediately; the device FIFO does
    /// the rest (what MPS gives you).
    MpsBaseline,
    /// Baseline: no preemption, but launch waiting kernels shortest-
    /// predicted-first when the device frees up (§6.3.2's "kernel
    /// reordering").
    Reordering,
}

impl Policy {
    /// The paper's default HPF configuration (temporal, overhead-aware).
    #[must_use]
    pub fn hpf() -> Policy {
        Policy::Hpf {
            spatial: false,
            overhead_aware: true,
            forced_yield: None,
        }
    }

    /// HPF with spatial preemption enabled.
    #[must_use]
    pub fn hpf_spatial() -> Policy {
        Policy::Hpf {
            spatial: true,
            overhead_aware: true,
            forced_yield: None,
        }
    }

    /// HPF with spatial preemption yielding a fixed SM count (Fig. 16).
    #[must_use]
    pub fn hpf_spatial_yielding(sms: u32) -> Policy {
        Policy::Hpf {
            spatial: true,
            overhead_aware: true,
            forced_yield: Some(sms),
        }
    }
}

/// Lifecycle of a job inside the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    /// Not yet arrived.
    Future,
    /// Arrived, waiting in a priority queue (CPU state S2).
    Queued,
    /// Granted the GPU; a grid is launched or running (CPU state S3).
    Running,
    /// Granted the GPU spatially alongside a victim that keeps running.
    RunningShared,
    /// Signalled to preempt; waiting for its CTAs to drain.
    Draining,
    /// A spatial victim: keeps running on its remaining SMs while another
    /// job uses the yielded ones.
    SharedVictim,
    /// All invocations finished.
    Done,
}

/// Internal per-job state: the §5.1 execution-logging triplet plus launch
/// bookkeeping.
#[derive(Debug)]
struct Job {
    spec: JobSpec,
    state: JobState,
    /// `T_e`: predicted duration, set once at arrival.
    te: SimTime,
    /// `T_r`: predicted remaining execution time.
    tr: SimTime,
    /// `T_w`: accumulated waiting time.
    tw: SimTime,
    /// When the current waiting period began.
    wait_since: Option<SimTime>,
    /// Tasks completed across preemptions (current invocation).
    tasks_done: u64,
    /// The live grid, if any.
    grid: Option<GridId>,
    /// When the preemption signal was sent (drain-latency sample start).
    signalled_at: Option<SimTime>,
    /// When the current grant began (for live `T_r` estimation).
    granted_at: Option<SimTime>,
    /// Completed invocations.
    completions: u64,
    /// Relaunch counter (perturbs the seed per resume).
    launches: u64,
    record: JobRecord,
    /// FFS: epoch generation, to ignore stale epoch-expiry events.
    epoch_gen: u64,
    /// Current escalation level of the in-flight preemption:
    /// 0 = flag, 1 = forced drain, 2 = killed.
    escalation: u8,
    /// SMs the current preemption signal asked the job to yield (the
    /// watchdog's compliance probe range).
    signal_sms: u32,
    /// Consecutive transiently rejected launch attempts.
    retry_attempts: u32,
    /// Earliest time the next launch retry may go out (backoff gate).
    retry_after: Option<SimTime>,
}

impl Job {
    /// Fresh runtime state for a spec (`T_e` from the prediction or the
    /// wave model; everything else at its arrival defaults).
    fn from_spec(spec: JobSpec, config: &flep_gpu_sim::GpuConfig) -> Job {
        let te = spec
            .predicted
            .unwrap_or_else(|| spec.profile.estimate_duration(config));
        let record = JobRecord {
            name: spec.profile.name.clone(),
            priority: spec.priority,
            arrival: spec.arrival,
            ..JobRecord::default()
        };
        // A migrated incarnation resumes at the saved task counter; its
        // remaining-time prediction shrinks by the fraction already done.
        let resume = spec.resume_from.min(spec.profile.total_tasks);
        let tr = if resume == 0 {
            te
        } else {
            let frac =
                (spec.profile.total_tasks - resume) as f64 / spec.profile.total_tasks.max(1) as f64;
            te.scale(frac)
        };
        Job {
            spec,
            state: JobState::Future,
            te,
            tr,
            tw: SimTime::ZERO,
            wait_since: None,
            tasks_done: resume,
            grid: None,
            signalled_at: None,
            completions: 0,
            launches: 0,
            granted_at: None,
            record,
            epoch_gen: 0,
            escalation: 0,
            signal_sms: 0,
            retry_attempts: 0,
            retry_after: None,
        }
    }

    /// Waiting and eligible to launch now (any retry backoff has passed).
    fn is_ready(&self, now: SimTime) -> bool {
        self.state == JobState::Queued && self.retry_after.is_none_or(|t| t <= now)
    }

    fn remaining_tasks(&self) -> u64 {
        self.spec.profile.total_tasks - self.tasks_done
    }

    fn begin_wait(&mut self, now: SimTime) {
        if self.wait_since.is_none() {
            self.wait_since = Some(now);
        }
    }

    fn end_wait(&mut self, now: SimTime) {
        if let Some(since) = self.wait_since.take() {
            let waited = now.saturating_sub(since);
            self.tw += waited;
            self.record.waiting += waited;
        }
    }
}

/// Events circulating in the system simulation.
#[derive(Debug)]
pub enum SystemEvent {
    /// A device-internal event.
    Gpu(GpuEvent),
    /// Job `idx` arrives (its host process reaches the launch site).
    Arrival(usize),
    /// FFS: job `idx`'s epoch of generation `gen` expires.
    EpochEnd {
        /// Job index.
        idx: usize,
        /// Epoch generation, to ignore stale timers.
        gen: u64,
    },
    /// Watchdog poll tick: reconcile runtime state against the device and
    /// escalate overdue preemptions. Only scheduled when a watchdog is
    /// configured, so fault-free runs see an identical event stream.
    Watchdog,
    /// The backoff for job `idx`'s transiently rejected launch expired.
    RetryLaunch {
        /// Job index.
        idx: usize,
    },
    /// A fault-delayed host notification reaching the runtime at its
    /// deferred delivery time.
    Note(HostNotification),
}

/// The co-simulated system: GPU device + FLEP runtime + workload arrivals.
#[derive(Debug)]
pub struct SystemWorld {
    device: GpuDevice,
    policy: Policy,
    jobs: Vec<Job>,
    /// Index of the job currently granted the GPU (exclusively).
    gpu_job: Option<usize>,
    /// Spatial victims still running alongside `gpu_job`.
    shared_victims: Vec<usize>,
    /// True while a temporal preemption drain is in flight.
    draining: bool,
    /// Per-job preemption-overhead profiles (§4.2).
    profilers: Vec<OverheadProfiler>,
    /// FFS rotation cursor.
    ffs_cursor: usize,
    /// Experiment horizon for looping jobs.
    horizon: Option<SimTime>,
    /// Optional GPUSwap-style working-set manager (§8 integration).
    swap: Option<SwapManager>,
    /// Preemption watchdog, when enabled (always under fault injection).
    watchdog: Option<WatchdogConfig>,
    /// Structured runtime failures, in occurrence order.
    errors: Vec<RuntimeError>,
    /// Watchdog recoveries, in occurrence order.
    recoveries: Vec<RecoveryEvent>,
    /// Preemption-drain outcomes by escalation level reached:
    /// `[flag, forced drain, kill]`.
    escalations: [u64; 3],
    /// Follow-up events produced while handling the current one, drained
    /// by the driver (or an embedding world) after every [`Self::dispatch`]
    /// call. Buffering instead of scheduling directly decouples the
    /// runtime from the engine's `Scheduler`, so a frontend with its own
    /// event type can embed the runtime; drain order equals push order, so
    /// `(time, seq)` tie-breaks — and every golden trace — are unchanged.
    pending: Vec<(SimTime, SystemEvent)>,
    /// Indices of jobs not yet `Done`, in ascending order. The scheduling
    /// and watchdog scans iterate this instead of the full job vector, so
    /// a serving frontend that submits tens of thousands of batch jobs
    /// over a run pays O(active) per decision rather than O(ever
    /// submitted). Ascending order keeps every index-order tie-break
    /// identical to the full-vector loops this replaced.
    active: Vec<usize>,
    /// Completion log `(time, job)`, appended on every completed
    /// invocation; drained by embedding frontends to observe batch
    /// completions without scanning the records.
    completed_log: Vec<(SimTime, usize)>,
    /// Terminal failures `(time, job)` — jobs retired without completing
    /// (permanent launch rejection, exhausted retries, unsatisfiable
    /// working set). Frontends must see these or a failed batch would
    /// leave its tenant waiting forever.
    failed_log: Vec<(SimTime, usize)>,
    /// Whether a watchdog tick is currently scheduled (the ladder must be
    /// re-armed when a job is submitted after the last one finished).
    watchdog_armed: bool,
    /// Jobs currently holding a live grid — the coalesced poll wheel a
    /// watchdog tick fans out over (DESIGN.md §12). Registered on grid
    /// launch, deregistered on retire/evict; ascending-index iteration
    /// replays exactly the order of the full active-list scan it
    /// replaced.
    poll_wheel: PollWheel,
    /// Reusable event-collection harness for [`Self::dispatch`] /
    /// [`Self::submit`] — taken at entry, restored after routing, so the
    /// per-event hot path performs no Vec allocations.
    scratch: CollectorHarness,
    /// Reusable harness for synchronous same-instant notification
    /// processing inside [`Self::route_harness`].
    scratch_sync: CollectorHarness,
    /// Reusable note staging buffer for [`Self::route_harness`].
    scratch_notes: Vec<(SimTime, HostNotification)>,
}

/// One job evicted by [`SystemWorld::decommission`]: everything the
/// cluster layer needs to relaunch it on a surviving device.
#[derive(Debug)]
pub struct EvictedJob {
    /// The job's index in *this* world (the cluster maps it back to its
    /// own job table).
    pub idx: usize,
    /// The spec as submitted to this world.
    pub spec: JobSpec,
    /// Absolute tasks completed so far (including any earlier
    /// incarnations' `resume_from` offset) — the migration resume point.
    pub tasks_done: u64,
    /// This incarnation's partial record, for cross-device aggregation.
    pub record: JobRecord,
}

/// Everything a finished run hands back ([`SystemWorld::into_records`]):
/// per-job records, device busy spans, per-SM `(sm, busy)` totals, and the
/// robustness report.
pub type RunRecords = (Vec<JobRecord>, Vec<Span>, Vec<(u64, SimTime)>, RunReport);

/// Robustness telemetry extracted alongside the job records after a run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Structured runtime failures, in occurrence order.
    pub errors: Vec<RuntimeError>,
    /// Watchdog recoveries, in occurrence order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Faults the device's injection plan fired (empty without a plan).
    pub faults: Vec<FaultEvent>,
    /// Preemption-drain outcomes by escalation level reached:
    /// `[flag, forced drain, kill]`.
    pub escalations: [u64; 3],
}

impl SystemWorld {
    /// Builds the world from job specs.
    #[must_use]
    pub fn new(
        device: GpuDevice,
        policy: Policy,
        specs: Vec<JobSpec>,
        horizon: Option<SimTime>,
    ) -> Self {
        let jobs: Vec<Job> = specs
            .into_iter()
            .map(|spec| Job::from_spec(spec, device.config()))
            .collect();
        let n = jobs.len();
        SystemWorld {
            device,
            policy,
            jobs,
            gpu_job: None,
            shared_victims: Vec::new(),
            draining: false,
            profilers: (0..n).map(|_| OverheadProfiler::new()).collect(),
            ffs_cursor: 0,
            horizon,
            swap: None,
            watchdog: None,
            errors: Vec::new(),
            recoveries: Vec::new(),
            escalations: [0; 3],
            pending: Vec::new(),
            active: (0..n).collect(),
            completed_log: Vec::new(),
            failed_log: Vec::new(),
            watchdog_armed: false,
            poll_wheel: PollWheel::default(),
            scratch: CollectorHarness::new(),
            scratch_sync: CollectorHarness::new(),
            scratch_notes: Vec::new(),
        }
    }

    /// Enables the preemption watchdog. The driver must also schedule the
    /// first [`SystemEvent::Watchdog`] tick; every tick re-arms itself
    /// until all jobs are done, and a later [`Self::submit`] re-arms it.
    pub fn set_watchdog(&mut self, cfg: WatchdogConfig) {
        self.watchdog = Some(cfg);
        self.watchdog_armed = true;
    }

    /// Submits a job dynamically at virtual time `now`: the serving
    /// frontend's dispatch hook. The job enters the waiting queue
    /// immediately (no [`SystemEvent::Arrival`] needed), a scheduling
    /// decision runs — so a higher-priority submission preempts the
    /// running grid through the normal HPF path — and the watchdog is
    /// re-armed if its ladder had wound down. Returns the job's index.
    ///
    /// Follow-up events land in the pending buffer; the embedding world
    /// must drain them via [`Self::for_each_pending`].
    pub fn submit(&mut self, now: SimTime, spec: JobSpec) -> usize {
        let idx = self.jobs.len();
        let mut job = Job::from_spec(spec, self.device.config());
        job.state = JobState::Queued;
        job.begin_wait(now);
        self.jobs.push(job);
        self.profilers.push(OverheadProfiler::new());
        self.active.push(idx);
        if let Some(wd) = self.watchdog {
            if !self.watchdog_armed {
                self.watchdog_armed = true;
                self.pending
                    .push((now + wd.poll_interval, SystemEvent::Watchdog));
            }
        }
        let mut harness = std::mem::take(&mut self.scratch);
        self.reschedule(now, &mut harness);
        self.route_harness(now, &mut harness);
        self.scratch = harness;
        idx
    }

    /// Enables working-set swapping: launches whose declared working set
    /// is not device-resident pay the swap-in time as launch latency.
    pub fn set_swap(&mut self, swap: SwapManager) {
        self.swap = Some(swap);
    }

    /// Swap statistics, if swapping is enabled.
    #[must_use]
    pub fn swap_stats(&self) -> Option<SwapStats> {
        self.swap.as_ref().map(SwapManager::stats)
    }

    /// Extracts the per-job records and robustness telemetry after the run.
    #[must_use]
    pub fn into_records(self) -> RunRecords {
        let spans = self.device.busy_spans().to_vec();
        let totals = self.device.busy_totals().to_vec();
        let report = RunReport {
            errors: self.errors,
            recoveries: self.recoveries,
            faults: self.device.fault_log().to_vec(),
            escalations: self.escalations,
        };
        (
            self.jobs.into_iter().map(|j| j.record).collect(),
            spans,
            totals,
            report,
        )
    }

    /// The device (for span/trace inspection mid-run).
    #[must_use]
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// Mutable device access, for the cluster's device-fault layer
    /// (doorbell gating on a hang).
    pub fn device_mut(&mut self) -> &mut GpuDevice {
        &mut self.device
    }

    /// Jobs not yet done or failed — the cluster placement layer's
    /// same-instant load tie-breaker.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Device-level failure: resets the device (evicting every resident
    /// CTA with **no** host notifications — a lost device cannot
    /// interrupt the host), folds each live grid's completed-task counter
    /// into its job, and retires every unfinished job, returning their
    /// resume snapshots in ascending job order for the cluster's
    /// migration path. Completions that already reached the logs are
    /// untouched; the caller should drain them first.
    ///
    /// After this call the world is inert: no grids, no active jobs, and
    /// any stale in-flight events (GPU completions, launch arrivals,
    /// retries, watchdog ticks) are dropped by the existing staleness
    /// guards when they fire.
    pub fn decommission(&mut self, now: SimTime) -> Vec<EvictedJob> {
        // First reconcile grids that retired *before* the reset but whose
        // terminal notification is still in flight (it will be dropped by
        // the stale-note guard once the job's grid link is cleared here):
        // their progress lives only in device state, and missing it would
        // re-run completed tasks after migration.
        for k in 0..self.active.len() {
            let idx = self.active[k];
            let Some(grid) = self.jobs[idx].grid else {
                continue;
            };
            if let Some(GridPhase::Completed | GridPhase::Preempted) = self.device.grid_phase(grid)
            {
                let done = self.device.grid_tasks_done(grid).unwrap_or(0);
                let job = &mut self.jobs[idx];
                job.grid = None;
                job.tasks_done += done;
                job.record.tasks_completed += done;
                job.signalled_at = None;
                job.escalation = 0;
            }
        }
        for reset in self.device.reset(now) {
            let idx = reset.tag as usize;
            let Some(job) = self.jobs.get_mut(idx) else {
                continue;
            };
            // Only fold the eviction snapshot of the job's *live* grid; a
            // stale retired grid of the same job was already accounted.
            if job.grid != Some(reset.grid) {
                continue;
            }
            job.grid = None;
            job.tasks_done += reset.tasks_done;
            job.record.tasks_completed += reset.tasks_done;
            // An unresolved preemption drain dies with the device; it
            // reached no escalation outcome, so it is not counted.
            job.signalled_at = None;
            job.escalation = 0;
        }
        let evicted_indices: Vec<usize> = self.active.clone();
        let mut out = Vec::with_capacity(evicted_indices.len());
        for idx in evicted_indices {
            let job = &mut self.jobs[idx];
            job.end_wait(now);
            job.grid = None;
            job.retry_after = None;
            out.push(EvictedJob {
                idx,
                spec: job.spec.clone(),
                tasks_done: job.tasks_done,
                record: std::mem::take(&mut job.record),
            });
            job.state = JobState::Done;
        }
        self.active.clear();
        self.poll_wheel.clear();
        self.gpu_job = None;
        self.draining = false;
        self.shared_victims.clear();
        out
    }

    fn past_horizon(&self, now: SimTime) -> bool {
        self.horizon.is_some_and(|h| now >= h)
    }

    /// Drains the buffered follow-up events in push order. The driver (or
    /// embedding world) forwards each to its own event queue; push order
    /// equals the old direct-scheduling order, so `(time, seq)`
    /// tie-breaking is preserved exactly.
    pub fn for_each_pending(&mut self, mut f: impl FnMut(SimTime, SystemEvent)) {
        // `drain` keeps the buffer's allocation, so steady state is
        // allocation-free on the hot path.
        for (at, ev) in self.pending.drain(..) {
            f(at, ev);
        }
    }

    /// Appends and clears the completion log: every `(time, job)`
    /// invocation completion since the last drain.
    pub fn drain_completions_into(&mut self, out: &mut Vec<(SimTime, usize)>) {
        out.append(&mut self.completed_log);
    }

    /// Appends and clears the failure log: every `(time, job)` terminal
    /// failure since the last drain.
    pub fn drain_failures_into(&mut self, out: &mut Vec<(SimTime, usize)>) {
        out.append(&mut self.failed_log);
    }

    /// Marks a job `Done` and retires it from the active-index scans.
    fn retire(&mut self, idx: usize) {
        self.jobs[idx].state = JobState::Done;
        if let Ok(pos) = self.active.binary_search(&idx) {
            self.active.remove(pos);
        }
    }

    /// Retires a job that will never complete and logs the failure for
    /// embedding frontends.
    fn fail_job(&mut self, now: SimTime, idx: usize) {
        self.retire(idx);
        self.failed_log.push((now, idx));
    }

    // -- Launch helpers ---------------------------------------------------

    /// Launches job `idx`'s (next) grid. Returns `false` when no grid went
    /// out: a transient device rejection (the job re-queues with bounded,
    /// exponentially backed-off retries) or a permanent failure (the job is
    /// marked failed and a [`RuntimeError`] recorded) — both former panic
    /// sites.
    fn launch_job(&mut self, now: SimTime, idx: usize, harness: &mut CollectorHarness) -> bool {
        let job = &mut self.jobs[idx];
        job.end_wait(now);
        if job.record.first_granted.is_none() {
            job.record.first_granted = Some(now);
        }
        let seed = job
            .spec
            .seed
            .wrapping_add(job.launches)
            .wrapping_add(job.completions << 32);
        job.launches += 1;
        let working_set = job.spec.working_set_bytes;
        let mut desc = match self.policy {
            Policy::MpsBaseline | Policy::Reordering => {
                job.spec.profile.original_desc(idx as u64, seed)
            }
            _ => job.spec.profile.persistent_desc(
                idx as u64,
                seed,
                job.tasks_done,
                job.remaining_tasks(),
            ),
        };
        if let Some(swap) = self.swap.as_mut() {
            if working_set > 0 {
                match swap.acquire(idx as u64, working_set, now) {
                    Ok(delay) => desc = desc.with_extra_launch_delay(delay),
                    Err(_) => {
                        // No amount of eviction makes this working set fit:
                        // fail the job instead of poisoning the experiment.
                        self.errors
                            .push(RuntimeError::SwapUnsatisfiable { job: idx });
                        self.fail_job(now, idx);
                        return false;
                    }
                }
            }
        }
        match self.device.launch(now, desc, harness) {
            Ok(grid) => {
                self.poll_wheel.register(idx);
                let job = &mut self.jobs[idx];
                job.grid = Some(grid);
                job.granted_at = Some(now);
                job.retry_attempts = 0;
                job.retry_after = None;
                job.state = JobState::Running;
                true
            }
            Err(e) if e.is_transient() => {
                let wd = self.watchdog.unwrap_or_default();
                let job = &mut self.jobs[idx];
                job.retry_attempts += 1;
                let attempt = job.retry_attempts;
                if attempt > wd.max_launch_retries {
                    self.errors.push(RuntimeError::LaunchRetriesExhausted {
                        job: idx,
                        attempts: attempt - 1,
                    });
                    self.fail_job(now, idx);
                    return false;
                }
                // Exponential backoff, doubling per consecutive rejection.
                let backoff = wd.retry_backoff * (1u64 << u64::from((attempt - 1).min(20)));
                job.state = JobState::Queued;
                job.begin_wait(now);
                job.retry_after = Some(now + backoff);
                self.recoveries.push(RecoveryEvent {
                    at: now,
                    job: idx,
                    action: RecoveryAction::LaunchRetry(attempt),
                });
                self.pending
                    .push((now + backoff, SystemEvent::RetryLaunch { idx }));
                false
            }
            Err(error) => {
                self.errors
                    .push(RuntimeError::LaunchFailed { job: idx, error });
                self.fail_job(now, idx);
                false
            }
        }
    }

    /// The running job's live `T_r`: the prediction at grant minus the
    /// time it has been running since (§5.1: `T_r` decreases on the GPU).
    fn live_tr(&self, idx: usize, now: SimTime) -> SimTime {
        let job = &self.jobs[idx];
        match job.granted_at {
            Some(at) => job.tr.saturating_sub(now.saturating_sub(at)),
            None => job.tr,
        }
    }

    /// Signals the currently granted job to yield `sms` SMs.
    fn signal_preempt(&mut self, now: SimTime, idx: usize, sms: u32) {
        let job = &mut self.jobs[idx];
        if let Some(grid) = job.grid {
            job.signalled_at = Some(now);
            job.signal_sms = sms;
            job.escalation = 0;
            self.device.signal(now, grid, PreemptSignal::YieldSms(sms));
        }
    }

    fn preempt_overhead_estimate(&self, idx: usize) -> SimTime {
        let fallback = self.jobs[idx]
            .spec
            .profile
            .estimate_preempt_overhead(self.device.config());
        self.profilers[idx].mean_or(fallback)
    }

    // -- Scheduling core ----------------------------------------------------

    /// The best waiting job: highest priority first, then shortest
    /// remaining predicted time (queues are ordered by `T_r`, §5.2.1).
    /// Scans only the active index; the comparator's final index
    /// tie-break makes the result independent of scan order.
    fn best_waiting(&self, now: SimTime) -> Option<usize> {
        self.active
            .iter()
            .map(|&i| (i, &self.jobs[i]))
            .filter(|(_, j)| j.is_ready(now))
            .min_by(|(ai, a), (bi, b)| {
                b.spec
                    .priority
                    .cmp(&a.spec.priority)
                    .then(a.tr.cmp(&b.tr))
                    .then(ai.cmp(bi))
            })
            .map(|(i, _)| i)
    }

    /// The central HPF decision procedure (Fig. 6): called on every
    /// arrival, completion, and drain.
    fn reschedule_hpf(
        &mut self,
        now: SimTime,
        spatial: bool,
        overhead_aware: bool,
        forced_yield: Option<u32>,
        harness: &mut CollectorHarness,
    ) {
        if self.draining {
            return; // Decisions resume when the victim has drained.
        }
        let Some(best) = self.best_waiting(now) else {
            return;
        };
        match self.gpu_job {
            None => {
                if self.launch_job(now, best, harness) {
                    self.gpu_job = Some(best);
                }
            }
            Some(running) => {
                let bp = self.jobs[best].spec.priority;
                let rp = self.jobs[running].spec.priority;
                if bp > rp {
                    // Priority preemption: yield just enough SMs when the
                    // waiting kernel underfills the device and spatial mode
                    // is on; otherwise yield everything.
                    let cfg_sms = self.device.config().num_sms;
                    let fit = self.jobs[best]
                        .spec
                        .profile
                        .sms_needed(self.device.config(), self.jobs[best].remaining_tasks());
                    let needed = forced_yield.unwrap_or(fit).max(fit).min(cfg_sms);
                    if spatial && needed < cfg_sms {
                        // Launch the borrower first: if its launch is
                        // rejected (fault injection), the victim keeps its
                        // SMs instead of yielding them to nobody. Both
                        // calls act at the same instant and neither
                        // observes the other, so the order does not change
                        // fault-free runs.
                        if self.launch_job(now, best, harness) {
                            self.signal_preempt(now, running, needed);
                            self.jobs[running].state = JobState::SharedVictim;
                            self.shared_victims.push(running);
                            self.jobs[best].state = JobState::RunningShared;
                            self.gpu_job = Some(best);
                        }
                    } else {
                        self.signal_preempt(now, running, cfg_sms);
                        self.jobs[running].state = JobState::Draining;
                        self.draining = true;
                    }
                } else if bp == rp {
                    // Same priority: shortest-remaining-time, counting the
                    // preemption overhead against the switch (§5.2.1).
                    let overhead = if overhead_aware {
                        self.preempt_overhead_estimate(running)
                    } else {
                        SimTime::ZERO
                    };
                    if self.jobs[best].tr + overhead < self.live_tr(running, now) {
                        self.signal_preempt(now, running, self.device.config().num_sms);
                        self.jobs[running].state = JobState::Draining;
                        self.draining = true;
                    }
                }
            }
        }
    }

    /// FFS: grant the GPU to the next queued job in rotation and arm its
    /// epoch timer.
    fn grant_next_ffs(&mut self, now: SimTime, max_overhead: f64, harness: &mut CollectorHarness) {
        if self.gpu_job.is_some() || self.past_horizon(now) {
            return;
        }
        let n = self.jobs.len();
        let Some(pick) = (0..n)
            .map(|k| (self.ffs_cursor + k) % n)
            .find(|&i| self.jobs[i].is_ready(now))
        else {
            return;
        };
        self.ffs_cursor = (pick + 1) % n;
        if !self.launch_job(now, pick, harness) {
            return; // Rotation already advanced; a retry re-enters here.
        }
        self.gpu_job = Some(pick);

        // Epoch length: T * W_i with T from the §5.2.2 constraint
        //   sum(O_i) / (T * sum(W_i)) <= max_overhead.
        let total_overhead: SimTime = (0..n).map(|i| self.preempt_overhead_estimate(i)).sum();
        let total_weight: u64 = self
            .jobs
            .iter()
            .map(|j| u64::from(j.spec.priority.max(1)))
            .sum();
        let t = SimTime::from_us_f64(
            total_overhead.as_us() / (max_overhead * total_weight as f64).max(1e-9),
        );
        let epoch = t * u64::from(self.jobs[pick].spec.priority.max(1));
        self.jobs[pick].epoch_gen += 1;
        let gen = self.jobs[pick].epoch_gen;
        self.pending
            .push((now + epoch, SystemEvent::EpochEnd { idx: pick, gen }));
    }

    fn reschedule(&mut self, now: SimTime, harness: &mut CollectorHarness) {
        match self.policy {
            Policy::Hpf {
                spatial,
                overhead_aware,
                forced_yield,
            } => self.reschedule_hpf(now, spatial, overhead_aware, forced_yield, harness),
            Policy::Ffs { max_overhead } => self.grant_next_ffs(now, max_overhead, harness),
            Policy::MpsBaseline => {
                // Launch everything that has arrived, immediately; the
                // device FIFO provides the (non-preemptive) ordering. The
                // active list is ascending, so launch order matches the
                // old full-vector scan.
                let arrived: Vec<usize> = self
                    .active
                    .iter()
                    .copied()
                    .filter(|&i| self.jobs[i].is_ready(now))
                    .collect();
                for idx in arrived {
                    self.launch_job(now, idx, harness);
                }
            }
            Policy::Reordering => {
                // No preemption: wait for the device to go idle, then
                // launch the shortest predicted kernel first.
                if self.gpu_job.is_none() {
                    if let Some(best) = self.best_waiting(now) {
                        if self.launch_job(now, best, harness) {
                            self.gpu_job = Some(best);
                        }
                    }
                }
            }
        }
    }

    // -- Watchdog ---------------------------------------------------------

    /// One watchdog pass: reconcile runtime job state against device
    /// ground truth (terminal notifications lost to faults), enforce drain
    /// deadlines through the escalation ladder, and re-run the scheduling
    /// decision so backed-off retries and stalled grants make progress.
    /// Re-arms itself until every active job is done; a later
    /// [`Self::submit`] re-arms it again.
    fn watchdog_scan(&mut self, now: SimTime, harness: &mut CollectorHarness) {
        let Some(wd) = self.watchdog else { return };
        // Fan out over the poll wheel: exactly the jobs holding a live
        // grid, in ascending index order — the same jobs, in the same
        // order, the full active-list scan this replaced acted on (it
        // skipped grid-less jobs). The successor scan tolerates mid-tick
        // register/deregister; states do not change during this loop
        // (device probes buffer their notifications).
        let mut cur = None;
        while let Some(idx) = self.poll_wheel.next_after(cur) {
            cur = Some(idx);
            let Some(grid) = self.jobs[idx].grid else {
                debug_assert!(false, "poll wheel holds only jobs with live grids");
                continue;
            };
            // A lost DispatchStarted only affects the record; patch it from
            // the device's own timestamp.
            if self.jobs[idx].record.first_dispatched.is_none() {
                if let Some(t) = self.device.grid_dispatch_started(grid) {
                    self.jobs[idx].record.first_dispatched = Some(t);
                }
            }
            match self.device.grid_phase(grid) {
                Some(phase @ (GridPhase::Completed | GridPhase::Preempted)) => {
                    // The grid retired but the runtime still thinks it is
                    // live: its terminal notification was lost. Rebuild it
                    // from device state and deliver it through the normal
                    // path (the stale-note guard drops any late copy).
                    let done = self.device.grid_tasks_done(grid).unwrap_or(0);
                    let tag = idx as u64;
                    let note = if phase == GridPhase::Completed {
                        HostNotification::Completed {
                            grid,
                            tag,
                            tasks_done: done,
                        }
                    } else {
                        HostNotification::Preempted {
                            grid,
                            tag,
                            tasks_done: done,
                            remaining_tasks: self.jobs[idx].remaining_tasks() - done,
                        }
                    };
                    self.recoveries.push(RecoveryEvent {
                        at: now,
                        job: idx,
                        action: RecoveryAction::LostNotification,
                    });
                    harness.notify_host(now, note);
                }
                Some(_) => {
                    let job = &self.jobs[idx];
                    let Some(signalled) = job.signalled_at else {
                        continue;
                    };
                    // Compliance probe: does the grid still hold threads on
                    // SMs the signal told it to vacate? Spatial victims
                    // legitimately keep running on their remaining SMs, so
                    // the deadline applies only to the yielded range.
                    if self.device.grid_threads_below(grid, job.signal_sms) == 0 {
                        continue;
                    }
                    if job.escalation == 0 && now >= signalled + wd.drain_deadline {
                        self.jobs[idx].escalation = 1;
                        self.recoveries.push(RecoveryEvent {
                            at: now,
                            job: idx,
                            action: RecoveryAction::ForcedDrain,
                        });
                        self.device.force_drain(now, grid);
                    } else if job.escalation == 1 && now >= signalled + wd.drain_deadline * 2 {
                        self.jobs[idx].escalation = 2;
                        self.recoveries.push(RecoveryEvent {
                            at: now,
                            job: idx,
                            action: RecoveryAction::Killed,
                        });
                        self.device.kill_grid(now, grid, harness);
                    }
                }
                None => {}
            }
        }
        // Backed-off retries and grants stalled by earlier failures resume
        // here even when no other event would trigger a decision.
        self.reschedule(now, harness);
        if self.active.is_empty() {
            self.watchdog_armed = false;
        } else {
            self.pending
                .push((now + wd.poll_interval, SystemEvent::Watchdog));
        }
    }

    // -- Notification handling -------------------------------------------

    fn on_notification(
        &mut self,
        now: SimTime,
        note: HostNotification,
        harness: &mut CollectorHarness,
    ) {
        let idx = note.tag() as usize;
        // Stale-note guard: a kill or watchdog reconciliation may already
        // have resolved this grid on the runtime side while a delayed (or
        // in-flight) copy of its notification was still travelling. Only
        // the note matching the job's live grid is acted on; fault-free
        // runs never take this path (grids outlive their notifications).
        if self
            .jobs
            .get(idx)
            .is_none_or(|j| j.grid != Some(note.grid()))
        {
            return;
        }
        match note {
            HostNotification::DispatchStarted { .. } => {
                let job = &mut self.jobs[idx];
                if job.record.first_dispatched.is_none() {
                    job.record.first_dispatched = Some(now);
                }
            }
            HostNotification::Completed { tasks_done, .. } => {
                // The grid is retiring below; a looping FFS relaunch
                // re-registers through `launch_job`.
                self.poll_wheel.deregister(idx);
                self.completed_log.push((now, idx));
                let finished_state = self.jobs[idx].state;
                // A kernel signalled for preemption may complete before any
                // CTA observes the flag; the drain is then over without a
                // Preempted event.
                if finished_state == JobState::Draining {
                    self.draining = false;
                }
                if self.jobs[idx].signalled_at.take().is_some() {
                    let lvl = usize::from(self.jobs[idx].escalation.min(2));
                    self.escalations[lvl] += 1;
                    self.jobs[idx].escalation = 0;
                }
                let job = &mut self.jobs[idx];
                job.tasks_done += tasks_done;
                job.record.tasks_completed += tasks_done;
                debug_assert_eq!(job.tasks_done, job.spec.profile.total_tasks);
                job.grid = None;
                job.completions += 1;
                job.tr = SimTime::ZERO;
                if job.record.completed.is_none() {
                    job.record.completed = Some(now);
                }
                job.record.completions = job.completions;

                let was_shared = job.state == JobState::SharedVictim;
                let repeat = job.spec.repeat;
                if repeat == RepeatMode::Loop && !self.past_horizon(now) {
                    // The host process immediately re-invokes the kernel.
                    let job = &mut self.jobs[idx];
                    job.tasks_done = 0;
                    job.tr = job.te;
                    // Under FFS a job owns the GPU for its whole epoch: if
                    // an invocation completes early, the next invocation
                    // launches immediately and the pending EpochEnd timer
                    // still bounds the turn. If the epoch already expired
                    // (the job was draining when it completed), the turn is
                    // over and the rotation below takes the GPU away.
                    if matches!(self.policy, Policy::Ffs { .. })
                        && self.gpu_job == Some(idx)
                        && finished_state == JobState::Running
                        && self.launch_job(now, idx, harness)
                    {
                        return;
                    }
                    // (A failed relaunch falls through: the job already
                    // re-queued or failed inside `launch_job`; give the GPU
                    // up either way.)
                    let job = &mut self.jobs[idx];
                    if job.state != JobState::Done {
                        job.state = JobState::Queued;
                        job.begin_wait(now);
                    }
                    if self.gpu_job == Some(idx) {
                        self.gpu_job = None;
                    }
                } else {
                    self.retire(idx);
                    if self.gpu_job == Some(idx) {
                        self.gpu_job = None;
                    }
                }
                if was_shared {
                    self.shared_victims.retain(|&v| v != idx);
                } else {
                    // A spatial borrower finished: give every still-running
                    // victim its yielded SMs back by relaunching persistent
                    // CTAs against the victim's task counter. The (last)
                    // restored victim becomes the GPU's running job again,
                    // so future arrivals preempt it properly.
                    if finished_state == JobState::RunningShared {
                        let victims: Vec<usize> = self.shared_victims.clone();
                        for v in victims {
                            if let Some(grid) = self.jobs[v].grid {
                                self.device.restore_grid(now, grid, harness);
                                self.jobs[v].state = JobState::Running;
                                if self.gpu_job.is_none() {
                                    self.gpu_job = Some(v);
                                }
                            }
                            self.shared_victims.retain(|&x| x != v);
                        }
                    }
                    self.reschedule(now, harness);
                }
            }
            HostNotification::Preempted {
                tasks_done,
                remaining_tasks,
                ..
            } => {
                self.poll_wheel.deregister(idx);
                let job = &mut self.jobs[idx];
                job.tasks_done += tasks_done;
                job.record.tasks_completed += tasks_done;
                debug_assert_eq!(job.remaining_tasks(), remaining_tasks);
                job.grid = None;
                job.record.preemptions += 1;
                if let Some(at) = job.signalled_at.take() {
                    let drain = now.saturating_sub(at);
                    job.record.drain_samples.push(drain);
                    self.profilers[idx].record(drain);
                    self.escalations[usize::from(job.escalation.min(2))] += 1;
                    job.escalation = 0;
                }
                // T_r update (§5.1): scale the prediction by the fraction
                // of tasks still unprocessed.
                let frac =
                    job.remaining_tasks() as f64 / job.spec.profile.total_tasks.max(1) as f64;
                job.tr = job.te.scale(frac);
                job.state = JobState::Queued;
                job.begin_wait(now);
                // A killed spatial victim lands here too; it no longer
                // shares the device with anyone.
                self.shared_victims.retain(|&v| v != idx);
                if self.gpu_job == Some(idx) {
                    self.gpu_job = None;
                }
                self.draining = false;
                self.reschedule(now, harness);
            }
        }
    }
}

impl SystemWorld {
    /// Handles one system event, buffering every follow-up in the pending
    /// list instead of scheduling it directly. [`World::handle`] is a thin
    /// wrapper that drains the buffer into the engine's queue; an
    /// embedding world (the serving frontend) calls this directly and
    /// drains into its own event type via [`Self::for_each_pending`].
    pub fn dispatch(&mut self, now: SimTime, event: SystemEvent) {
        // Reuse the persistent scratch harness: `take` leaves a fresh
        // (allocation-free) default behind, and the restore below hands
        // the drained buffers' capacity back for the next event.
        let mut harness = std::mem::take(&mut self.scratch);
        match event {
            SystemEvent::Gpu(ev) => {
                self.device.handle(now, ev, &mut harness);
            }
            SystemEvent::Arrival(idx) => {
                let job = &mut self.jobs[idx];
                debug_assert_eq!(job.state, JobState::Future);
                job.state = JobState::Queued;
                job.begin_wait(now);
                self.reschedule(now, &mut harness);
            }
            SystemEvent::EpochEnd { idx, gen } => {
                // Only act on the current epoch, and only if the job is
                // still the one on the GPU.
                if self.jobs[idx].epoch_gen == gen
                    && self.gpu_job == Some(idx)
                    && self.jobs[idx].state == JobState::Running
                {
                    let sms = self.device.config().num_sms;
                    self.signal_preempt(now, idx, sms);
                    self.jobs[idx].state = JobState::Draining;
                    self.draining = true;
                }
            }
            SystemEvent::Watchdog => {
                self.watchdog_scan(now, &mut harness);
            }
            SystemEvent::RetryLaunch { idx } => {
                // The backoff expired; re-run the scheduling decision if
                // the job is still waiting (it may have launched, finished,
                // or failed in the meantime).
                if self.jobs[idx].state == JobState::Queued {
                    self.reschedule(now, &mut harness);
                }
            }
            SystemEvent::Note(note) => {
                // A fault-delayed notification arriving at its deferred
                // delivery time.
                self.on_notification(now, note, &mut harness);
            }
        }
        self.route_harness(now, &mut harness);
        self.scratch = harness;
    }

    /// Routes device-scheduled events and host notifications collected in
    /// `harness` into the pending buffer, processing same-instant
    /// notifications synchronously (exactly the old in-`handle` routing,
    /// so the push order — and thus `(time, seq)` tie-breaking — is
    /// bit-identical). All staging goes through persistent scratch
    /// buffers, so the steady-state (note-free) hot path allocates
    /// nothing.
    fn route_harness(&mut self, now: SimTime, harness: &mut CollectorHarness) {
        for (at, ev) in harness.gpu_events.drain(..) {
            self.pending.push((at, SystemEvent::Gpu(ev)));
        }
        if harness.notes.is_empty() {
            return;
        }
        let mut notes = std::mem::take(&mut self.scratch_notes);
        debug_assert!(notes.is_empty());
        notes.append(&mut harness.notes);
        let mut h2 = std::mem::take(&mut self.scratch_sync);
        for (at, note) in notes.drain(..) {
            if at > now {
                // Fault-delayed: deliver when it lands instead of now.
                self.pending.push((at, SystemEvent::Note(note)));
                continue;
            }
            self.on_notification(at, note, &mut h2);
            for (t, ev) in h2.gpu_events.drain(..) {
                self.pending.push((t, SystemEvent::Gpu(ev)));
            }
            debug_assert!(
                h2.notes.is_empty(),
                "notifications must not recurse synchronously"
            );
        }
        self.scratch_sync = h2;
        self.scratch_notes = notes;
    }
}

impl World for SystemWorld {
    type Event = SystemEvent;

    fn handle(&mut self, now: SimTime, event: SystemEvent, sched: &mut Scheduler<'_, SystemEvent>) {
        self.dispatch(now, event);
        for (at, ev) in self.pending.drain(..) {
            sched.schedule_at(at, ev);
        }
    }
}
