//! The FLEP runtime engine (§5 of the paper): the online phase.
//!
//! The runtime intercepts every kernel invocation, predicts its duration,
//! logs its execution status as the `(T_e, T_w, T_r)` triplet, and decides
//! which kernels to preempt and schedule:
//!
//! * [`Policy::Hpf`] — highest-priority-first (Fig. 6): priority
//!   preemption across levels, shortest-remaining-time within a level, and
//!   a preemption only when the waiting kernel's remaining time plus the
//!   profiled preemption overhead beats the running kernel's remaining
//!   time. Optionally yields just enough SMs for the waiting grid
//!   (spatial preemption, §3).
//! * [`Policy::Ffs`] — fairness-first weighted round-robin whose epoch
//!   length is derived from the §5.2.2 overhead constraint.
//! * [`Policy::MpsBaseline`] / [`Policy::Reordering`] — the two
//!   non-preemptive baselines the evaluation compares against.
//!
//! Experiments are described with [`CoRun`] and return [`CoRunResult`]
//! records; the world itself ([`SystemWorld`]) is public for tests that
//! need event-level control. [`GpuCluster`] shards the runtime across N
//! simulated devices with per-device failure domains and
//! kill-migrate-restart recovery; [`ClusterRun`] is its driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod driver;
mod health;
mod job;
mod poll;
mod world;

pub use cluster::{
    parse_cluster_mode, ClusterConfig, ClusterEvent, ClusterResult, ClusterRun, DeviceEvent,
    DeviceEventKind, DeviceState, GpuCluster, PlacementConfig, StepMode,
};
pub use driver::{CoRun, CoRunResult, DEFAULT_EVENT_BUDGET};
pub use health::{BreakerState, DeviceHealth, HealthConfig};
pub use job::{JobRecord, JobSpec, KernelProfile, RepeatMode};
pub use world::{
    EvictedJob, Policy, RecoveryAction, RecoveryEvent, RunRecords, RunReport, RuntimeError,
    SystemEvent, SystemWorld, WatchdogConfig,
};
