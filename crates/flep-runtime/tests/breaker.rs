//! Directed circuit-breaker edge cases: the closed → open → half-open
//! machine under precisely staged fault timelines — a probe racing a
//! fresh fault, quarantine landing mid-migration, and permanent death
//! never earning re-admission. All timings are scripted, so every
//! scenario replays exactly.

use flep_gpu_sim::{DeviceFaultConfig, DeviceFaultKind, GpuConfig};
use flep_runtime::{
    ClusterConfig, ClusterResult, ClusterRun, DeviceEventKind, HealthConfig, JobSpec,
    KernelProfile, Policy,
};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

/// Two devices, a single-loss-trips-it breaker (threshold 1.0 < loss
/// weight 1.5), 200µs probe cooldown, and a 300µs device reset so probe
/// timing can race the recovery.
fn edge_cfg(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(2, GpuConfig::k40(), Policy::hpf());
    cfg.health = Some(
        HealthConfig::default()
            .with_threshold(1.0)
            .with_probe_cooldown(SimTime::from_us(200)),
    );
    cfg.device_faults =
        Some(DeviceFaultConfig::quiet(seed).with_losses(0.0, SimTime::from_us(300)));
    cfg
}

fn count(r: &ClusterResult, device: u32, kind: DeviceEventKind) -> usize {
    r.device_events
        .iter()
        .filter(|e| e.device == device && e.kind == kind)
        .count()
}

fn event_at(r: &ClusterResult, device: u32, kind: DeviceEventKind) -> Option<SimTime> {
    r.device_events
        .iter()
        .find(|e| e.device == device && e.kind == kind)
        .map(|e| e.at)
}

/// The baseline quarantine → backoff → re-admission lap. The first probe
/// timer (300µs) fires while the device is still resetting (until
/// 400µs), so it must count as a failed attempt and back off; the
/// doubled retry finds the device healthy, launches the grid, and closes
/// the breaker. No placement may land inside the quarantine window.
#[test]
fn probe_backs_off_through_reset_then_readmits() {
    let mut run = ClusterRun::new({
        let mut cfg = edge_cfg(1);
        cfg.scripted_faults = vec![(SimTime::from_us(100), 0, DeviceFaultKind::TransientLoss)];
        cfg
    });
    run = run.job(
        JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO).with_priority(1),
    );
    // A late arrival keeps the run alive well past the expected
    // re-admission (~720µs), since fault plans stop the clock at settle.
    run = run.job(
        JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::from_ms(1),
        )
        .with_priority(2),
    );
    let r = run.run();
    assert!(r.reconciles());
    assert_eq!(r.completed, 2, "jobs: {:?}", r.jobs);

    let open = event_at(&r, 0, DeviceEventKind::Quarantined).expect("breaker opened");
    assert_eq!(open, SimTime::from_us(100));
    // Exactly one grid launch: the resetting-device attempt backs off
    // without launching anything.
    assert_eq!(count(&r, 0, DeviceEventKind::ProbeLaunched), 1);
    let readmit = event_at(&r, 0, DeviceEventKind::Readmitted).expect("readmitted");
    // First probe 100+200=300µs races the reset (done 400µs) and fails;
    // the backed-off retry lands at 700µs, after the device healed.
    assert!(
        readmit >= SimTime::from_us(700),
        "readmitted at {readmit} before the backed-off probe"
    );
    // No placement inside the quarantine window.
    for &(at, job, device) in &r.placements {
        assert!(
            device != 0 || at <= open || at >= readmit,
            "job {job} placed on quarantined device 0 at {at}"
        );
    }
    assert_eq!(r.summary.quarantines, 1);
    assert_eq!(r.summary.probes, 1);
    assert_eq!(r.summary.readmissions, 1);
}

/// A fresh hang lands while the probe grid is in flight (half-open): the
/// probation must fail — breaker back to open, harder backoff — and the
/// stale grid's eventual completion must prove nothing. Only the next
/// probe, after the hang heals, re-admits.
#[test]
fn fresh_hang_during_half_open_reopens_the_breaker() {
    let mut cfg = edge_cfg(2);
    // A long probe grid (400 × 5µs tasks) keeps the half-open window
    // wide, and a 500µs hang duration bounds the second outage.
    let health = HealthConfig {
        probe_tasks: 400,
        ..HealthConfig::default()
            .with_threshold(1.0)
            .with_probe_cooldown(SimTime::from_us(200))
    };
    cfg.health = Some(health);
    cfg.device_faults = Some(
        DeviceFaultConfig::quiet(2)
            .with_losses(0.0, SimTime::from_us(300))
            .with_hangs(0.0, SimTime::from_us(500)),
    );
    cfg.scripted_faults = vec![
        // Trips the breaker at 100µs; probe fails at 300µs (resetting),
        // retry launches the grid at 700µs.
        (SimTime::from_us(100), 0, DeviceFaultKind::TransientLoss),
        // ... and the hang lands 2µs into the probe grid.
        (SimTime::from_us(702), 0, DeviceFaultKind::Hang),
    ];
    let mut run = ClusterRun::new(cfg);
    run = run.job(
        JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO).with_priority(1),
    );
    run = run.job(
        JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::from_us(1800),
        )
        .with_priority(2),
    );
    let r = run.run();
    assert!(r.reconciles());
    assert_eq!(r.completed, 2, "jobs: {:?}", r.jobs);

    // Two grid launches: the raced one and the one that finally counts.
    assert_eq!(
        count(&r, 0, DeviceEventKind::ProbeLaunched),
        2,
        "events: {:?}",
        r.device_events
    );
    // Exactly one re-admission, and only after the hang healed (1202µs):
    // the raced grid's completion closed nothing.
    assert_eq!(count(&r, 0, DeviceEventKind::Readmitted), 1);
    let readmit = event_at(&r, 0, DeviceEventKind::Readmitted).unwrap();
    assert!(
        readmit > SimTime::from_us(1202),
        "readmitted at {readmit}, inside the second outage"
    );
    // The half-open fault re-opened silently — no second Quarantined
    // event, just a failed probation.
    assert_eq!(r.summary.quarantines, 1);
    assert_eq!(r.summary.probes, 2);
    assert_eq!(r.summary.readmissions, 1);
}

/// Quarantine arrives while a migration is already in flight: device 0
/// trips first (its job migrates to device 1), then device 1 trips with
/// that migrant resident — every device quarantined, so the displaced
/// work parks until the first re-admission lands it. Nothing lost,
/// nothing run on a quarantined device.
#[test]
fn quarantine_during_migration_parks_until_readmission() {
    let mut cfg = edge_cfg(3);
    cfg.scripted_faults = vec![
        (SimTime::from_us(100), 0, DeviceFaultKind::TransientLoss),
        (SimTime::from_us(200), 1, DeviceFaultKind::TransientLoss),
    ];
    let mut run = ClusterRun::new(cfg);
    for i in 0..2u64 {
        run = run.job(
            JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO)
                .with_priority(1 + i as u32),
        );
    }
    run = run.job(
        JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::from_us(1200),
        )
        .with_priority(3),
    );
    let r = run.run();
    assert!(r.reconciles());
    assert_eq!(r.completed, 3, "jobs: {:?}", r.jobs);
    assert_eq!(r.stranded, 0);
    // The first loss displaced work onto the survivor before it too
    // tripped.
    assert!(r.migrations >= 1, "recoveries: {:?}", r.recoveries);
    // Both breakers opened and both earned their way back.
    for d in 0..2 {
        assert_eq!(count(&r, d, DeviceEventKind::Quarantined), 1);
        assert_eq!(count(&r, d, DeviceEventKind::Readmitted), 1);
        let open = event_at(&r, d, DeviceEventKind::Quarantined).unwrap();
        let readmit = event_at(&r, d, DeviceEventKind::Readmitted).unwrap();
        for &(at, job, device) in &r.placements {
            assert!(
                device != d || at <= open || at >= readmit,
                "job {job} placed on quarantined device {device} at {at}"
            );
        }
    }
    assert_eq!(r.summary.quarantines, 2);
    assert_eq!(r.summary.readmissions, 2);
}

/// A device that dies permanently after tripping its breaker is never
/// probed and never re-admitted: the pending probe timer finds it dead
/// and drops the attempt on the floor. Work migrates to the survivor and
/// completes there.
#[test]
fn permanent_death_is_never_readmitted() {
    let mut cfg = edge_cfg(4);
    cfg.scripted_faults = vec![
        // Trips the breaker (probe due at 300µs) ...
        (SimTime::from_us(100), 0, DeviceFaultKind::TransientLoss),
        // ... then the device dies before the probe fires.
        (SimTime::from_us(150), 0, DeviceFaultKind::Death),
    ];
    let mut run = ClusterRun::new(cfg);
    run = run.job(
        JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO).with_priority(1),
    );
    run = run.job(
        JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::from_us(600),
        )
        .with_priority(2),
    );
    let r = run.run();
    assert!(r.reconciles());
    assert_eq!(r.completed, 2, "jobs: {:?}", r.jobs);
    assert_eq!(count(&r, 0, DeviceEventKind::Quarantined), 1);
    assert_eq!(count(&r, 0, DeviceEventKind::Deregistered), 1);
    // Dead is terminal: no probe is ever launched, nothing re-admits.
    assert_eq!(count(&r, 0, DeviceEventKind::ProbeLaunched), 0);
    assert_eq!(count(&r, 0, DeviceEventKind::Readmitted), 0);
    assert_eq!(r.summary.probes, 0);
    assert_eq!(r.summary.readmissions, 0);
    // Everything after the death runs on the survivor.
    for &(at, job, device) in &r.placements {
        assert!(
            device != 0 || at < SimTime::from_us(150),
            "job {job} placed on dead device 0 at {at}"
        );
    }
}
