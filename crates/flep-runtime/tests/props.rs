//! Property-based tests over the whole runtime: for arbitrary job mixes,
//! arrival patterns, and policies, scheduling must conserve work, complete
//! every one-shot job, and stay deterministic.

use proptest::prelude::*;

use flep_gpu_sim::GpuConfig;
use flep_runtime::{CoRun, JobSpec, KernelProfile, Policy};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

fn arb_bench() -> impl Strategy<Value = BenchmarkId> {
    prop::sample::select(BenchmarkId::ALL.to_vec())
}

fn arb_class() -> impl Strategy<Value = InputClass> {
    // Larges make property runs slow; smalls and trivials cover the
    // scheduling space just as well.
    prop_oneof![Just(InputClass::Small), Just(InputClass::Trivial)]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::hpf()),
        Just(Policy::hpf_spatial()),
        Just(Policy::MpsBaseline),
        Just(Policy::Reordering),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the mix: every job completes, exactly its task count is
    /// executed, waiting times are consistent, and nothing is scheduled
    /// before it arrives.
    #[test]
    fn any_mix_completes_and_conserves_tasks(
        jobs in prop::collection::vec(
            (arb_bench(), arb_class(), 0u64..3_000, 1u32..4, any::<u64>()),
            1..7
        ),
        policy in arb_policy(),
    ) {
        let mut corun = CoRun::new(GpuConfig::k40(), policy);
        for &(id, class, arrival_us, priority, seed) in &jobs {
            corun = corun.job(
                JobSpec::new(profile(id, class), SimTime::from_us(arrival_us))
                    .with_priority(priority)
                    .with_seed(seed),
            );
        }
        let result = corun.run();
        prop_assert_eq!(result.jobs.len(), jobs.len());
        for (record, &(id, class, arrival_us, _, _)) in result.jobs.iter().zip(&jobs) {
            let expected_tasks = Benchmark::get(id).profile(class).tasks;
            prop_assert!(
                record.completed.is_some(),
                "{} never completed under {:?}",
                record.name,
                policy
            );
            prop_assert_eq!(
                record.tasks_completed,
                expected_tasks,
                "{} task conservation",
                &record.name
            );
            prop_assert!(record.completed.unwrap() >= SimTime::from_us(arrival_us));
            if let Some(granted) = record.first_granted {
                prop_assert!(granted >= record.arrival);
            }
            // Waiting never exceeds the whole turnaround.
            prop_assert!(record.waiting <= record.turnaround().unwrap());
        }
    }

    /// Runs are bit-identical across repetitions (determinism holds for
    /// every policy, not just the ones the examples exercise).
    #[test]
    fn any_corun_is_deterministic(
        jobs in prop::collection::vec(
            (arb_bench(), arb_class(), 0u64..1_000, 1u32..3, any::<u64>()),
            1..5
        ),
        policy in arb_policy(),
    ) {
        let build = || {
            let mut corun = CoRun::new(GpuConfig::k40(), policy);
            for &(id, class, arrival_us, priority, seed) in &jobs {
                corun = corun.job(
                    JobSpec::new(profile(id, class), SimTime::from_us(arrival_us))
                        .with_priority(priority)
                        .with_seed(seed),
                );
            }
            corun.run()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.jobs, b.jobs);
        prop_assert_eq!(a.end_time, b.end_time);
    }

    /// Under HPF, a strictly-highest-priority job is never preempted.
    #[test]
    fn top_priority_job_is_never_preempted(
        others in prop::collection::vec(
            (arb_bench(), arb_class(), 0u64..2_000, any::<u64>()),
            1..5
        ),
        top in arb_bench(),
    ) {
        let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf()).job(
            JobSpec::new(profile(top, InputClass::Small), SimTime::from_us(100))
                .with_priority(10),
        );
        for &(id, class, arrival_us, seed) in &others {
            corun = corun.job(
                JobSpec::new(profile(id, class), SimTime::from_us(arrival_us))
                    .with_priority(1)
                    .with_seed(seed),
            );
        }
        let result = corun.run();
        prop_assert_eq!(result.jobs[0].preemptions, 0);
        prop_assert!(result.jobs[0].completed.is_some());
    }
}
