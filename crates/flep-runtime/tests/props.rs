//! Property-based tests over the whole runtime: for arbitrary job mixes,
//! arrival patterns, and policies, scheduling must conserve work, complete
//! every one-shot job, and stay deterministic. Runs on the in-tree
//! `flep-check` harness; enum-valued inputs are generated as indices so
//! scalar shrinking still applies.

use flep_gpu_sim::GpuConfig;
use flep_runtime::{CoRun, JobSpec, KernelProfile, Policy};
use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{assume, require, require_eq, SimRng, SimTime};
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

fn bench_of(idx: u64) -> BenchmarkId {
    BenchmarkId::ALL[(idx as usize) % BenchmarkId::ALL.len()]
}

/// Larges make property runs slow; smalls and trivials cover the
/// scheduling space just as well.
fn class_of(small: bool) -> InputClass {
    if small {
        InputClass::Small
    } else {
        InputClass::Trivial
    }
}

fn policy_of(idx: u64) -> Policy {
    match idx % 4 {
        0 => Policy::hpf(),
        1 => Policy::hpf_spatial(),
        2 => Policy::MpsBaseline,
        _ => Policy::Reordering,
    }
}

/// One generated job: (bench index, small?, arrival_us, priority, seed).
type JobTuple = (u64, bool, u64, u64, u64);

fn gen_jobs(rng: &mut SimRng, max_jobs: u64, max_arrival: u64, max_prio: u64) -> Vec<JobTuple> {
    let n = rng.uniform_u64(1, max_jobs) as usize;
    (0..n)
        .map(|_| {
            (
                rng.uniform_u64(0, 7),
                rng.bool(),
                rng.uniform_u64(0, max_arrival),
                rng.uniform_u64(1, max_prio),
                rng.u64(),
            )
        })
        .collect()
}

/// Whatever the mix: every job completes, exactly its task count is
/// executed, waiting times are consistent, and nothing is scheduled before
/// it arrives.
#[test]
fn any_mix_completes_and_conserves_tasks() {
    check(
        "any_mix_completes_and_conserves_tasks",
        CheckConfig::default(),
        |rng: &mut SimRng| (gen_jobs(rng, 6, 2_999, 3), rng.uniform_u64(0, 3)),
        |(jobs, policy_idx)| {
            assume!(!jobs.is_empty());
            assume!(jobs.iter().all(|&(_, _, _, p, _)| p >= 1));
            let policy = policy_of(*policy_idx);
            let mut corun = CoRun::new(GpuConfig::k40(), policy);
            for &(bidx, small, arrival_us, priority, seed) in jobs {
                corun = corun.job(
                    JobSpec::new(
                        profile(bench_of(bidx), class_of(small)),
                        SimTime::from_us(arrival_us),
                    )
                    .with_priority(priority as u32)
                    .with_seed(seed),
                );
            }
            let result = corun.run();
            require_eq!(result.jobs.len(), jobs.len());
            for (record, &(bidx, small, arrival_us, _, _)) in result.jobs.iter().zip(jobs) {
                let expected_tasks = Benchmark::get(bench_of(bidx))
                    .profile(class_of(small))
                    .tasks;
                require!(
                    record.completed.is_some(),
                    "{} never completed under {:?}",
                    record.name,
                    policy
                );
                require_eq!(
                    record.tasks_completed,
                    expected_tasks,
                    "{} task conservation",
                    &record.name
                );
                require!(record.completed.unwrap() >= SimTime::from_us(arrival_us));
                if let Some(granted) = record.first_granted {
                    require!(granted >= record.arrival);
                }
                // Waiting never exceeds the whole turnaround.
                require!(record.waiting <= record.turnaround().unwrap());
            }
            Ok(())
        },
    );
}

/// Runs are bit-identical across repetitions (determinism holds for every
/// policy, not just the ones the examples exercise).
#[test]
fn any_corun_is_deterministic() {
    check(
        "any_corun_is_deterministic",
        CheckConfig::default(),
        |rng: &mut SimRng| (gen_jobs(rng, 4, 999, 2), rng.uniform_u64(0, 3)),
        |(jobs, policy_idx)| {
            assume!(!jobs.is_empty());
            assume!(jobs.iter().all(|&(_, _, _, p, _)| p >= 1));
            let build = || {
                let mut corun = CoRun::new(GpuConfig::k40(), policy_of(*policy_idx));
                for &(bidx, small, arrival_us, priority, seed) in jobs {
                    corun = corun.job(
                        JobSpec::new(
                            profile(bench_of(bidx), class_of(small)),
                            SimTime::from_us(arrival_us),
                        )
                        .with_priority(priority as u32)
                        .with_seed(seed),
                    );
                }
                corun.run()
            };
            let a = build();
            let b = build();
            require_eq!(a.jobs, b.jobs);
            require_eq!(a.end_time, b.end_time);
            Ok(())
        },
    );
}

/// Under HPF, a strictly-highest-priority job is never preempted.
#[test]
fn top_priority_job_is_never_preempted() {
    check(
        "top_priority_job_is_never_preempted",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let others: Vec<(u64, bool, u64, u64)> = (0..rng.uniform_u64(1, 4))
                .map(|_| {
                    (
                        rng.uniform_u64(0, 7),
                        rng.bool(),
                        rng.uniform_u64(0, 1_999),
                        rng.u64(),
                    )
                })
                .collect();
            (others, rng.uniform_u64(0, 7))
        },
        |(others, top_idx)| {
            assume!(!others.is_empty());
            let top = bench_of(*top_idx);
            let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf()).job(
                JobSpec::new(profile(top, InputClass::Small), SimTime::from_us(100))
                    .with_priority(10),
            );
            for &(bidx, small, arrival_us, seed) in others {
                corun = corun.job(
                    JobSpec::new(
                        profile(bench_of(bidx), class_of(small)),
                        SimTime::from_us(arrival_us),
                    )
                    .with_priority(1)
                    .with_seed(seed),
                );
            }
            let result = corun.run();
            require_eq!(result.jobs[0].preemptions, 0);
            require!(result.jobs[0].completed.is_some());
            Ok(())
        },
    );
}

/// A fault plan whose every rate is zero still owns an RNG stream and (via
/// the implied watchdog) a polling event source — but neither may leak into
/// job-visible results: records match a run with the fault layer absent,
/// and every robustness log stays empty.
#[test]
fn quiet_fault_plan_is_invisible() {
    use flep_gpu_sim::FaultConfig;

    check(
        "quiet_fault_plan_is_invisible",
        CheckConfig::default(),
        |rng: &mut SimRng| (gen_jobs(rng, 4, 1_999, 3), rng.uniform_u64(0, 3), rng.u64()),
        |(jobs, policy_idx, fault_seed)| {
            assume!(!jobs.is_empty());
            assume!(jobs.iter().all(|&(_, _, _, p, _)| p >= 1));
            let build = |faults: bool| {
                let mut corun = CoRun::new(GpuConfig::k40(), policy_of(*policy_idx));
                if faults {
                    corun = corun.with_faults(FaultConfig::quiet(*fault_seed));
                }
                for &(bidx, small, arrival_us, priority, seed) in jobs {
                    corun = corun.job(
                        JobSpec::new(
                            profile(bench_of(bidx), class_of(small)),
                            SimTime::from_us(arrival_us),
                        )
                        .with_priority(priority as u32)
                        .with_seed(seed),
                    );
                }
                corun.run()
            };
            let plain = build(false);
            let quiet = build(true);
            require_eq!(plain.jobs, quiet.jobs);
            require!(quiet.faults.is_empty());
            require!(quiet.recoveries.is_empty());
            require!(quiet.errors.is_empty());
            // `escalations[0]` counts ordinary flag-level preemptions, so
            // it is free to be non-zero — but it must match the plain run,
            // and the forced-drain / kill rungs must never fire without
            // injected faults.
            require_eq!(plain.escalations, quiet.escalations);
            require_eq!(quiet.escalations[1], 0);
            require_eq!(quiet.escalations[2], 0);
            Ok(())
        },
    );
}
