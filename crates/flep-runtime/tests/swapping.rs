//! Tests for the GPUSwap integration (§8 future work): device-memory
//! oversubscription at kernel-launch granularity.

use flep_gpu_sim::{GpuConfig, SwapManager};
use flep_runtime::{CoRun, JobSpec, KernelProfile, Policy};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

/// A small device: 1 GiB, 10 GB/s PCIe.
fn small_memory() -> SwapManager {
    SwapManager::new(1 << 30, 10_000.0, SimTime::from_us(10))
}

const GIB: u64 = 1 << 30;

#[test]
fn fitting_working_sets_never_swap() {
    let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .with_swap(small_memory())
        .job(
            JobSpec::new(profile(BenchmarkId::Mm, InputClass::Small), SimTime::ZERO)
                .with_working_set(GIB / 4),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Spmv, InputClass::Small),
                SimTime::from_us(20),
            )
            .with_working_set(GIB / 4),
        )
        .run();
    let stats = result.swap_stats.expect("swap enabled");
    assert_eq!(stats.swap_outs, 0, "both sets fit: no eviction");
    assert_eq!(stats.swap_ins, 2, "each set loaded once");
}

#[test]
fn oversubscription_thrashes_and_costs_time() {
    // Two jobs whose sets cannot coexist, with the HPF scheduler bouncing
    // between them (equal priority, SRT preemption).
    let run = |working_set: u64| {
        CoRun::new(GpuConfig::k40(), Policy::hpf())
            .with_swap(small_memory())
            .job(
                JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO)
                    .with_working_set(working_set),
            )
            .job(
                JobSpec::new(
                    profile(BenchmarkId::Mm, InputClass::Small),
                    SimTime::from_us(50),
                )
                .with_working_set(working_set),
            )
            .run()
    };
    let fits = run(GIB / 4);
    let thrashes = run(GIB * 3 / 4);
    let fits_stats = fits.swap_stats.unwrap();
    let thrash_stats = thrashes.swap_stats.unwrap();
    assert_eq!(fits_stats.swap_outs, 0);
    assert!(
        thrash_stats.swap_outs >= 2,
        "oversubscribed sets must evict each other ({} swap-outs)",
        thrash_stats.swap_outs
    );
    // Swap traffic delays completion.
    let fits_end = fits.end_time;
    let thrash_end = thrashes.end_time;
    assert!(
        thrash_end > fits_end + SimTime::from_us(100),
        "thrashing run ({thrash_end}) must pay for its transfers vs ({fits_end})"
    );
}

#[test]
fn resume_after_preemption_repays_swap_in_if_evicted() {
    // VA (large set) is preempted by MM (large set): MM's swap-in evicts
    // VA; VA's resume swaps back in. At least 3 swap-ins total.
    let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .with_swap(small_memory())
        .job(
            JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO)
                .with_priority(1)
                .with_working_set(GIB * 3 / 4),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Mm, InputClass::Small),
                SimTime::from_us(50),
            )
            .with_priority(2)
            .with_working_set(GIB * 3 / 4),
        )
        .run();
    let stats = result.swap_stats.unwrap();
    assert_eq!(result.jobs[0].preemptions, 1);
    assert!(result.jobs.iter().all(|j| j.completed.is_some()));
    assert!(stats.swap_ins >= 3, "swap-ins {}", stats.swap_ins);
    assert!(stats.swap_outs >= 2, "swap-outs {}", stats.swap_outs);
}

#[test]
fn jobs_without_working_sets_ignore_the_swap_manager() {
    let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .with_swap(small_memory())
        .job(JobSpec::new(
            profile(BenchmarkId::Pf, InputClass::Small),
            SimTime::ZERO,
        ))
        .run();
    let stats = result.swap_stats.unwrap();
    assert_eq!(stats.swap_ins, 0);
    assert_eq!(stats.hits, 0);
}

#[test]
fn swap_disabled_reports_none() {
    let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(JobSpec::new(
            profile(BenchmarkId::Pf, InputClass::Small),
            SimTime::ZERO,
        ))
        .run();
    assert!(result.swap_stats.is_none());
}

#[test]
fn unsatisfiable_working_set_is_a_structured_error_not_a_panic() {
    use flep_runtime::RuntimeError;

    // A working set twice the device's memory can never be admitted. The
    // run must not panic: the doomed job is parked as a structured
    // `SwapUnsatisfiable` error and the healthy job runs to completion.
    let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .with_swap(small_memory())
        .job(
            JobSpec::new(profile(BenchmarkId::Mm, InputClass::Small), SimTime::ZERO)
                .with_working_set(2 * GIB),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Spmv, InputClass::Small),
                SimTime::from_us(20),
            )
            .with_working_set(GIB / 4),
        )
        .run();
    assert!(!result.succeeded());
    assert!(
        result
            .errors
            .iter()
            .any(|e| matches!(e, RuntimeError::SwapUnsatisfiable { job: 0 })),
        "expected SwapUnsatisfiable for job 0, got {:?}",
        result.errors
    );
    assert!(result.jobs[0].completed.is_none(), "doomed job cannot run");
    assert!(
        result.jobs[1].completed.is_some(),
        "healthy job must be unaffected"
    );
}
