//! Partitioned-vs-global event-order equivalence (DESIGN.md §13).
//!
//! `ClusterRun` can step the same run three ways — the flat reference
//! driver (one global queue), the merged partitioned driver (per-device
//! queues behind the sim-core cursor), and the epoch driver (independent
//! device streams with a barrier at every cluster-level timestamp). All
//! three must produce byte-identical results; this suite pins that on
//! fixed scenarios (same-timestamp cross-device pileups, N=1 `CoRun`
//! replay) and drives it through a flep-check property covering migration
//! storms, scripted faults, and grid-fault injection.

use flep_gpu_sim::{DeviceFaultConfig, DeviceFaultKind, FaultConfig, GpuConfig};
use flep_runtime::{
    ClusterConfig, ClusterResult, ClusterRun, CoRun, JobSpec, KernelProfile, Policy, StepMode,
    WatchdogConfig,
};
use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{require, require_eq, SimRng, SimTime};
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

fn bench_of(idx: u64) -> BenchmarkId {
    BenchmarkId::ALL[(idx as usize) % BenchmarkId::ALL.len()]
}

/// Full-fidelity comparison: the `Debug` rendering covers every field of
/// the result, including per-job records, error/recovery taxonomies, the
/// device-event log, and the end time.
fn render(r: &ClusterResult) -> String {
    format!("{r:?}")
}

fn run_in(mode: StepMode, cfg: ClusterConfig, specs: &[JobSpec]) -> ClusterResult {
    let mut run = ClusterRun::new(cfg).with_step_mode(mode);
    for s in specs {
        run = run.job(s.clone());
    }
    run.run()
}

/// Every mode must agree on this faults-off scenario: four devices, jobs
/// arriving in same-timestamp waves (so several devices interact with the
/// scheduler at one instant), plus a straggler wave while earlier work is
/// still resident.
#[test]
fn step_modes_agree_on_same_timestamp_cross_device_pileups() {
    let mix = [
        BenchmarkId::Va,
        BenchmarkId::Spmv,
        BenchmarkId::Mm,
        BenchmarkId::Md,
    ];
    let mut specs = Vec::new();
    for wave in 0..3u64 {
        for (i, &id) in mix.iter().enumerate() {
            specs.push(
                JobSpec::new(profile(id, InputClass::Small), SimTime::from_us(wave * 400))
                    .with_priority(1 + (i as u32 % 3))
                    .with_seed(wave * 31 + i as u64),
            );
        }
    }
    let cfg = || {
        let mut c = ClusterConfig::new(4, GpuConfig::k40(), Policy::hpf());
        c.watchdog = Some(WatchdogConfig::default());
        c
    };
    let flat = render(&run_in(StepMode::Flat, cfg(), &specs));
    let merged = render(&run_in(StepMode::Merged, cfg(), &specs));
    let epoch = render(&run_in(StepMode::Epoch, cfg(), &specs));
    assert_eq!(flat, merged, "merged diverged from flat");
    assert_eq!(flat, epoch, "epoch diverged from flat");
}

/// N=1 partitioned cluster replays the flat `CoRun` byte-identically, in
/// both partitioned modes (the satellite's explicit forced-mode check —
/// the default `Auto` path is pinned by the cluster suite).
#[test]
fn single_device_partitioned_cluster_replays_corun() {
    let specs = vec![
        JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO).with_priority(1),
        JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::from_us(200),
        )
        .with_priority(2),
    ];
    let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf());
    for s in &specs {
        corun = corun.job(s.clone());
    }
    let solo = corun.run();
    for mode in [StepMode::Merged, StepMode::Epoch] {
        let clustered = run_in(
            mode,
            ClusterConfig::new(1, GpuConfig::k40(), Policy::hpf()),
            &specs,
        );
        assert_eq!(solo.jobs, clustered.jobs, "{mode:?} records diverged");
        assert_eq!(solo.end_time, clustered.end_time, "{mode:?} end time");
        assert_eq!(solo.escalations, clustered.escalations);
        assert!(clustered.reconciles());
    }
}

/// Epoch stepping stays exact under grid-level fault injection: those
/// draws, launch retries, and watchdog escalations are all shard-local,
/// so they cross no epoch barrier.
#[test]
fn step_modes_agree_under_grid_faults() {
    let specs: Vec<JobSpec> = (0..6)
        .map(|i| {
            JobSpec::new(
                profile(bench_of(i), InputClass::Small),
                SimTime::from_us(i * 150),
            )
            .with_priority(1 + (i as u32 % 3))
            .with_seed(0xC0FE ^ i)
        })
        .collect();
    let cfg = || {
        let mut c = ClusterConfig::new(3, GpuConfig::k40(), Policy::hpf());
        c.grid_faults = Some(
            FaultConfig::quiet(0xF00D)
                .with_launch_reject(0.3)
                .with_signal_drop(0.2)
                .with_stuck_flag(0.2)
                .with_note_drop(0.2),
        );
        c
    };
    let flat = render(&run_in(StepMode::Flat, cfg(), &specs));
    let merged = render(&run_in(StepMode::Merged, cfg(), &specs));
    let epoch = render(&run_in(StepMode::Epoch, cfg(), &specs));
    assert_eq!(flat, merged, "merged diverged from flat");
    assert_eq!(flat, epoch, "epoch diverged from flat");
}

/// A scripted mid-run device death — migration traffic at an arbitrary
/// instant — is outside the epoch driver's eligibility, so `Epoch` must
/// quietly fall back to the (exact) merged driver and still match flat.
#[test]
fn scripted_death_migration_matches_flat_in_every_mode() {
    let specs: Vec<JobSpec> = (0..4)
        .map(|i| {
            JobSpec::new(profile(BenchmarkId::Mm, InputClass::Small), SimTime::ZERO)
                .with_priority(1)
                .with_seed(i)
        })
        .collect();
    let cfg = || {
        let mut c = ClusterConfig::new(2, GpuConfig::k40(), Policy::hpf());
        c.scripted_faults = vec![(SimTime::from_us(300), 0, DeviceFaultKind::Death)];
        c
    };
    let flat = render(&run_in(StepMode::Flat, cfg(), &specs));
    for mode in [StepMode::Merged, StepMode::Epoch, StepMode::Auto] {
        assert_eq!(flat, render(&run_in(mode, cfg(), &specs)), "{mode:?}");
    }
}

/// One generated job: (bench index, arrival_us, priority, seed).
type JobTuple = (u64, u64, u64, u64);

fn gen_cluster_case(rng: &mut SimRng) -> (u64, u64, Vec<JobTuple>, u64) {
    let devices = rng.uniform_u64(1, 4);
    let n = rng.uniform_u64(1, 7) as usize;
    let jobs = (0..n)
        .map(|_| {
            (
                rng.uniform_u64(0, 7),
                // Quantized arrivals force cross-device same-timestamp
                // pileups instead of making them astronomically unlikely.
                rng.uniform_u64(0, 4) * 250,
                rng.uniform_u64(1, 3),
                rng.u64(),
            )
        })
        .collect();
    // fault_class: 0 = none, 1 = grid faults, 2 = device-fault storm,
    // 3 = scripted death.
    (devices, rng.uniform_u64(0, 3), jobs, rng.u64())
}

fn build_case(devices: u64, fault_class: u64, jobs: &[JobTuple], seed: u64) -> ClusterRun {
    let mut cfg = ClusterConfig::new(devices as u32, GpuConfig::k40(), Policy::hpf());
    cfg.max_migrations = 4;
    match fault_class {
        1 => {
            cfg.grid_faults = Some(
                FaultConfig::quiet(seed)
                    .with_launch_reject(0.25)
                    .with_signal_drop(0.2)
                    .with_stuck_flag(0.15)
                    .with_note_drop(0.15),
            );
        }
        2 => {
            // A storm: high device-fault rates so short runs still see
            // hangs, transient losses, and deaths (i.e. migrations).
            cfg.device_faults = Some(
                DeviceFaultConfig::quiet(seed)
                    .with_hangs(600.0, SimTime::from_us(400))
                    .with_losses(400.0, SimTime::from_us(600))
                    .with_deaths(150.0),
            );
        }
        3 => {
            cfg.scripted_faults = vec![(
                SimTime::from_us(200 + seed % 800),
                (seed % devices) as u32,
                DeviceFaultKind::Death,
            )];
        }
        _ => {}
    }
    let mut run = ClusterRun::new(cfg);
    for &(bidx, arrival_us, priority, jseed) in jobs {
        run = run.job(
            JobSpec::new(
                profile(bench_of(bidx), InputClass::Small),
                SimTime::from_us(arrival_us),
            )
            .with_priority(priority as u32)
            .with_seed(jseed),
        );
    }
    run
}

/// The partitioned drivers replay the flat global event order for *any*
/// cluster: merged always (migration storms included), epoch whenever the
/// run is eligible (no device-level faults) — and `Auto` resolves to an
/// exact mode either way.
#[test]
fn partitioned_and_global_event_orders_are_equivalent() {
    check(
        "partitioned_and_global_event_orders_are_equivalent",
        CheckConfig::with_cases(24),
        gen_cluster_case,
        |&(devices, fault_class, ref jobs, seed)| {
            let flat = render(
                &build_case(devices, fault_class, jobs, seed)
                    .with_step_mode(StepMode::Flat)
                    .run(),
            );
            let merged = render(
                &build_case(devices, fault_class, jobs, seed)
                    .with_step_mode(StepMode::Merged)
                    .run(),
            );
            require_eq!(flat, merged, "merged vs flat (fault class {fault_class})");
            let epoch = render(
                &build_case(devices, fault_class, jobs, seed)
                    .with_step_mode(StepMode::Epoch)
                    .run(),
            );
            require_eq!(flat, epoch, "epoch vs flat (fault class {fault_class})");
            let auto = render(&build_case(devices, fault_class, jobs, seed).run());
            require_eq!(flat, auto, "auto vs flat (fault class {fault_class})");
            require!(!flat.is_empty());
            Ok(())
        },
    );
}
