//! Integration tests for the FLEP runtime: priority preemption, SRT
//! scheduling, FFS fairness, spatial preemption, and the baselines.

use flep_gpu_sim::GpuConfig;
use flep_runtime::{CoRun, JobSpec, KernelProfile, Policy};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

fn k40() -> GpuConfig {
    GpuConfig::k40()
}

#[test]
fn mps_baseline_blocks_short_kernel_behind_long_one() {
    // Fig. 1's phenomenon: under MPS the small kernel waits for the large
    // one.
    let lo = profile(BenchmarkId::Nn, InputClass::Large); // 15775us
    let hi = profile(BenchmarkId::Spmv, InputClass::Small); // 484us
    let result = CoRun::new(k40(), Policy::MpsBaseline)
        .job(JobSpec::new(lo, SimTime::ZERO))
        .job(JobSpec::new(hi, SimTime::from_us(10)))
        .run();
    let hi_turnaround = result.jobs[1].turnaround().unwrap();
    // It had to wait nearly the whole NN run: >30X its 484us solo time.
    assert!(
        hi_turnaround > SimTime::from_us(14_000),
        "turnaround {hi_turnaround}"
    );
}

#[test]
fn hpf_preempts_low_priority_for_high_priority() {
    let lo = profile(BenchmarkId::Nn, InputClass::Large);
    let hi = profile(BenchmarkId::Spmv, InputClass::Small);
    let result = CoRun::new(k40(), Policy::hpf())
        .job(JobSpec::new(lo, SimTime::ZERO).with_priority(1))
        .job(JobSpec::new(hi, SimTime::from_us(10)).with_priority(2))
        .run();
    let hi_rec = &result.jobs[1];
    let lo_rec = &result.jobs[0];
    // NN's drain is ~L*task = 100 * 2.63us = 263us; SPMV then runs 484us.
    let t = hi_rec.turnaround().unwrap();
    assert!(
        t < SimTime::from_us(1_000),
        "high-priority turnaround {t} should be well under 1ms"
    );
    // The victim was preempted exactly once and still completed everything.
    assert_eq!(lo_rec.preemptions, 1);
    assert!(lo_rec.completed.is_some());
    assert_eq!(lo_rec.completions, 1);
}

#[test]
fn hpf_speedup_over_mps_matches_paper_magnitude() {
    // Fig. 8's headline pair: SPMV (small, hi-prio) behind NN (large):
    // paper reports ~24X. Expect the same order of magnitude.
    let mk = |policy| {
        CoRun::new(k40(), policy)
            .job(
                JobSpec::new(profile(BenchmarkId::Nn, InputClass::Large), SimTime::ZERO)
                    .with_priority(1),
            )
            .job(
                JobSpec::new(
                    profile(BenchmarkId::Spmv, InputClass::Small),
                    SimTime::from_us(10),
                )
                .with_priority(2),
            )
            .run()
    };
    let base = mk(Policy::MpsBaseline).jobs[1].turnaround().unwrap();
    let flep = mk(Policy::hpf()).jobs[1].turnaround().unwrap();
    let speedup = base.as_us() / flep.as_us();
    assert!(
        speedup > 12.0 && speedup < 40.0,
        "speedup {speedup:.1}X out of expected band"
    );
}

#[test]
fn hpf_same_priority_runs_shortest_remaining_first() {
    // Long kernel first, then a short one with the same priority: FLEP
    // preempts for responsiveness (§6.3.1's equal-priority scenario).
    let lo = profile(BenchmarkId::Va, InputClass::Large); // 30634us
    let hi = profile(BenchmarkId::Mm, InputClass::Small); // 1499us
    let result = CoRun::new(k40(), Policy::hpf())
        .job(JobSpec::new(lo, SimTime::ZERO))
        .job(JobSpec::new(hi, SimTime::from_us(50)))
        .run();
    assert_eq!(result.jobs[0].preemptions, 1);
    let t = result.jobs[1].turnaround().unwrap();
    assert!(t < SimTime::from_us(3_000), "MM turnaround {t}");
}

#[test]
fn hpf_does_not_preempt_for_longer_remaining_work() {
    // The waiting kernel is LONGER than what remains of the running one:
    // no preemption should happen.
    let first = profile(BenchmarkId::Mm, InputClass::Small); // 1499us
    let second = profile(BenchmarkId::Va, InputClass::Large); // 30634us
    let result = CoRun::new(k40(), Policy::hpf())
        .job(JobSpec::new(first, SimTime::ZERO))
        .job(JobSpec::new(second, SimTime::from_us(50)))
        .run();
    assert_eq!(result.jobs[0].preemptions, 0);
    assert_eq!(result.jobs[1].preemptions, 0);
}

#[test]
fn preemption_overhead_term_prevents_thrashing() {
    // Two nearly identical kernels: remaining times differ by less than
    // the preemption overhead, so overhead-aware HPF must not preempt.
    let a = profile(BenchmarkId::Va, InputClass::Small);
    let mut b = profile(BenchmarkId::Va, InputClass::Small);
    // b is a hair shorter.
    b.total_tasks -= 120;
    let result = CoRun::new(
        k40(),
        Policy::Hpf {
            spatial: false,
            overhead_aware: true,
            forced_yield: None,
        },
    )
    .job(JobSpec::new(a, SimTime::ZERO))
    .job(JobSpec::new(b, SimTime::from_us(20)))
    .run();
    assert_eq!(result.jobs[0].preemptions, 0, "overhead-aware HPF thrashed");
}

#[test]
fn three_kernel_corun_schedules_shortest_first() {
    // §6.3.2's VA_SPMV_MM story: VA (large) is preempted, SPMV (shortest)
    // runs, then MM, then VA resumes.
    let result = CoRun::new(k40(), Policy::hpf())
        .job(JobSpec::new(
            profile(BenchmarkId::Va, InputClass::Large),
            SimTime::ZERO,
        ))
        .job(JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::from_us(30),
        ))
        .job(JobSpec::new(
            profile(BenchmarkId::Mm, InputClass::Small),
            SimTime::from_us(60),
        ))
        .run();
    let va = &result.jobs[0];
    let spmv = &result.jobs[1];
    let mm = &result.jobs[2];
    assert!(va.preemptions >= 1);
    assert!(spmv.completed.unwrap() < mm.completed.unwrap());
    assert!(mm.completed.unwrap() < va.completed.unwrap());
}

#[test]
fn reordering_cannot_rescue_blocked_queue() {
    // Reordering helps only kernels that have not started; the long kernel
    // launched first still blocks (the §6.3.2 ~2.3% result).
    let result = CoRun::new(k40(), Policy::Reordering)
        .job(JobSpec::new(
            profile(BenchmarkId::Va, InputClass::Large),
            SimTime::ZERO,
        ))
        .job(JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::from_us(30),
        ))
        .job(JobSpec::new(
            profile(BenchmarkId::Mm, InputClass::Small),
            SimTime::from_us(60),
        ))
        .run();
    // SPMV (shorter) goes before MM thanks to reordering...
    assert!(result.jobs[1].completed.unwrap() < result.jobs[2].completed.unwrap());
    // ...but both still waited for all of VA.
    assert!(result.jobs[1].turnaround().unwrap() > SimTime::from_us(30_000));
}

#[test]
fn spatial_preemption_yields_only_needed_sms() {
    // Victim large + trivial high-priority kernel (40 CTAs -> 5 SMs).
    let result = CoRun::new(k40(), Policy::hpf_spatial())
        .job(
            JobSpec::new(profile(BenchmarkId::Cfd, InputClass::Large), SimTime::ZERO)
                .with_priority(1),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Va, InputClass::Trivial),
                SimTime::from_us(200),
            )
            .with_priority(2),
        )
        .run();
    let victim = &result.jobs[0];
    let hi = &result.jobs[1];
    // The spatial victim is never drained to zero: no Preempted event.
    assert_eq!(victim.preemptions, 0);
    assert!(victim.completed.is_some());
    assert!(hi.completed.is_some());
    // The high-priority kernel finished long before the victim.
    assert!(hi.completed.unwrap() < victim.completed.unwrap());
}

#[test]
fn spatial_beats_temporal_on_corun_makespan() {
    // Fig. 15's mechanism: with a trivial high-priority kernel, yielding
    // only the needed SMs wastes less throughput than draining everything.
    let mk = |policy| {
        CoRun::new(k40(), policy)
            .job(
                JobSpec::new(profile(BenchmarkId::Md, InputClass::Large), SimTime::ZERO)
                    .with_priority(1),
            )
            .job(
                JobSpec::new(
                    profile(BenchmarkId::Va, InputClass::Trivial),
                    SimTime::from_us(200),
                )
                .with_priority(2),
            )
            .run()
    };
    let temporal = mk(Policy::hpf());
    let spatial = mk(Policy::hpf_spatial());
    let t_makespan = temporal.jobs[0]
        .completed
        .unwrap()
        .max(temporal.jobs[1].completed.unwrap());
    let s_makespan = spatial.jobs[0]
        .completed
        .unwrap()
        .max(spatial.jobs[1].completed.unwrap());
    assert!(
        s_makespan < t_makespan,
        "spatial {s_makespan} should beat temporal {t_makespan}"
    );
}

#[test]
fn ffs_enforces_two_to_one_share() {
    // Fig. 13: infinite loops with 2:1 weights converge to 2/3 vs 1/3
    // GPU shares.
    let horizon = SimTime::from_ms(400);
    let result = CoRun::new(k40(), Policy::Ffs { max_overhead: 0.10 })
        .with_span_trace() // gpu_share needs spans
        .job(
            JobSpec::new(profile(BenchmarkId::Pf, InputClass::Large), SimTime::ZERO)
                .with_priority(2)
                .looping(),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Pl, InputClass::Large),
                SimTime::from_us(5),
            )
            .with_priority(1)
            .looping(),
        )
        .horizon(horizon)
        .run();
    // Ignore the warmup: measure shares in the second half.
    let from = SimTime::from_ms(100);
    let hi_share = result.gpu_share(0, from, horizon);
    let lo_share = result.gpu_share(1, from, horizon);
    assert!(
        (hi_share - 2.0 / 3.0).abs() < 0.08,
        "high-weight share {hi_share:.3}"
    );
    assert!(
        (lo_share - 1.0 / 3.0).abs() < 0.08,
        "low-weight share {lo_share:.3}"
    );
    // Both jobs completed several loops.
    assert!(result.jobs[0].completions >= 2);
    assert!(result.jobs[1].completions >= 1);
}

#[test]
fn ffs_respects_overhead_budget() {
    // With a tighter budget the epochs get longer and preemptions rarer.
    let run = |budget: f64| {
        CoRun::new(
            k40(),
            Policy::Ffs {
                max_overhead: budget,
            },
        )
        .job(JobSpec::new(profile(BenchmarkId::Pf, InputClass::Large), SimTime::ZERO).looping())
        .job(
            JobSpec::new(
                profile(BenchmarkId::Pl, InputClass::Large),
                SimTime::from_us(5),
            )
            .looping(),
        )
        .horizon(SimTime::from_ms(200))
        .run()
    };
    let loose = run(0.10);
    let tight = run(0.01);
    let preemptions =
        |r: &flep_runtime::CoRunResult| r.jobs.iter().map(|j| j.preemptions).sum::<u32>();
    assert!(
        preemptions(&tight) < preemptions(&loose),
        "tight {} vs loose {}",
        preemptions(&tight),
        preemptions(&loose)
    );
}

#[test]
fn waiting_time_accounting_is_consistent() {
    let lo = profile(BenchmarkId::Nn, InputClass::Large);
    let hi = profile(BenchmarkId::Spmv, InputClass::Small);
    let result = CoRun::new(k40(), Policy::hpf())
        .job(JobSpec::new(lo, SimTime::ZERO).with_priority(1))
        .job(JobSpec::new(hi, SimTime::from_us(10)).with_priority(2))
        .run();
    // The victim's waiting time is roughly the high-priority kernel's
    // execution window.
    let victim_wait = result.jobs[0].waiting;
    assert!(
        victim_wait > SimTime::from_us(300) && victim_wait < SimTime::from_us(2_000),
        "victim waited {victim_wait}"
    );
    // The high-priority job's wait is the drain latency, well under 1ms.
    let hi_wait = result.jobs[1].waiting;
    assert!(hi_wait < SimTime::from_us(600), "hi waited {hi_wait}");
}

#[test]
fn corun_is_deterministic() {
    let mk = || {
        CoRun::new(k40(), Policy::hpf())
            .job(
                JobSpec::new(profile(BenchmarkId::Md, InputClass::Large), SimTime::ZERO)
                    .with_seed(7),
            )
            .job(
                JobSpec::new(
                    profile(BenchmarkId::Pf, InputClass::Small),
                    SimTime::from_us(100),
                )
                .with_seed(8),
            )
            .run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.end_time, b.end_time);
}

#[test]
fn drain_samples_feed_overhead_profiler() {
    let result = CoRun::new(k40(), Policy::hpf())
        .job(JobSpec::new(
            profile(BenchmarkId::Va, InputClass::Large),
            SimTime::ZERO,
        ))
        .job(JobSpec::new(
            profile(BenchmarkId::Mm, InputClass::Small),
            SimTime::from_us(50),
        ))
        .run();
    let victim = &result.jobs[0];
    assert_eq!(victim.drain_samples.len(), victim.preemptions as usize);
    for &d in &victim.drain_samples {
        // VA's drain: one batch of up to 200 tasks x 2.26us plus flag
        // latency: several hundred microseconds, never more than ~600us.
        assert!(d > SimTime::from_us(2) && d < SimTime::from_us(700), "{d}");
    }
}

#[test]
fn fault_layer_is_off_by_default() {
    // Without `with_faults`/`with_watchdog`, the robustness machinery must
    // be completely absent from a run's observable result: no fault log, no
    // recoveries, no errors, no forced-drain or kill escalations — and
    // `succeeded()` is true. (`escalations[0]` counts ordinary flag
    // preemptions and may be non-zero in general.)
    let result = CoRun::new(k40(), Policy::hpf())
        .job(
            JobSpec::new(profile(BenchmarkId::Va, InputClass::Small), SimTime::ZERO)
                .with_priority(1),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Spmv, InputClass::Trivial),
                SimTime::from_us(200),
            )
            .with_priority(2),
        )
        .run();
    assert!(result.succeeded());
    assert!(result.errors.is_empty());
    assert!(result.recoveries.is_empty());
    assert!(result.faults.is_empty());
    assert_eq!(result.escalations[1], 0);
    assert_eq!(result.escalations[2], 0);
}
