//! Stress and corner-case tests for the runtime: many priority levels,
//! arrival storms, FFS three-kernel co-runs (elided in the paper "due to
//! space limit", §6.3.3), and pathological schedules.

use flep_gpu_sim::GpuConfig;
use flep_runtime::{CoRun, CoRunResult, JobSpec, KernelProfile, Policy};
use flep_sim_core::{SimRng, SimTime};
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

fn all_complete(r: &CoRunResult) -> bool {
    r.jobs.iter().all(|j| j.completed.is_some())
}

#[test]
fn four_priority_levels_preempt_in_order() {
    // P1 < P2 < P3 < P4, arriving in ascending priority: each arrival
    // preempts the previous one; completions happen in descending
    // priority.
    let result = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(
            JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO)
                .with_priority(1),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Cfd, InputClass::Small),
                SimTime::from_us(100),
            )
            .with_priority(2),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Pf, InputClass::Small),
                SimTime::from_us(200),
            )
            .with_priority(3),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Spmv, InputClass::Small),
                SimTime::from_us(300),
            )
            .with_priority(4),
        )
        .run();
    assert!(all_complete(&result));
    let done: Vec<SimTime> = result.jobs.iter().map(|j| j.completed.unwrap()).collect();
    assert!(done[3] < done[2], "P4 before P3");
    assert!(done[2] < done[1], "P3 before P2");
    assert!(done[1] < done[0], "P2 before P1");
    // Every preempted victim was preempted at least once.
    assert!(result.jobs[0].preemptions >= 1);
}

#[test]
fn arrival_storm_of_sixteen_jobs_drains() {
    // Sixteen equal-priority jobs arriving in bursts; SRT orders them and
    // everything completes without deadlock or starvation.
    let mut rng = SimRng::seed_from(77);
    let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf());
    let smalls = [
        BenchmarkId::Cfd,
        BenchmarkId::Nn,
        BenchmarkId::Pf,
        BenchmarkId::Pl,
        BenchmarkId::Md,
        BenchmarkId::Spmv,
        BenchmarkId::Mm,
        BenchmarkId::Va,
    ];
    for i in 0..16u64 {
        let id = smalls[(i % 8) as usize];
        corun = corun.job(
            JobSpec::new(
                profile(id, InputClass::Small),
                SimTime::from_us(rng.uniform_u64(0, 500)),
            )
            .with_seed(i),
        );
    }
    let result = corun.run();
    assert!(all_complete(&result));
    // Makespan is bounded by the serial sum of the small inputs (two of
    // each, ~13.3ms of work) plus modest scheduling overheads.
    assert!(
        result.end_time < SimTime::from_ms(16),
        "storm took {}",
        result.end_time
    );
}

#[test]
fn ffs_three_kernel_corun_shares_match_weights() {
    // The experiment the paper elides: three looping kernels under FFS
    // with 3:2:1 weights converge to 1/2, 1/3, 1/6 shares.
    let horizon = SimTime::from_ms(120);
    let result = CoRun::new(GpuConfig::k40(), Policy::Ffs { max_overhead: 0.10 })
        .with_span_trace() // gpu_share needs spans
        .job(
            JobSpec::new(profile(BenchmarkId::Pf, InputClass::Large), SimTime::ZERO)
                .with_priority(3)
                .looping(),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Pl, InputClass::Large),
                SimTime::from_us(5),
            )
            .with_priority(2)
            .looping(),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Cfd, InputClass::Large),
                SimTime::from_us(10),
            )
            .with_priority(1)
            .looping(),
        )
        .horizon(horizon)
        .run();
    let from = SimTime::from_ms(30); // skip warmup
    let shares: Vec<f64> = (0..3).map(|i| result.gpu_share(i, from, horizon)).collect();
    assert!((shares[0] - 0.5).abs() < 0.09, "w=3 share {:.3}", shares[0]);
    assert!(
        (shares[1] - 1.0 / 3.0).abs() < 0.09,
        "w=2 share {:.3}",
        shares[1]
    );
    assert!(
        (shares[2] - 1.0 / 6.0).abs() < 0.09,
        "w=1 share {:.3}",
        shares[2]
    );
}

#[test]
fn simultaneous_arrivals_are_deterministic_and_orderly() {
    // Eight jobs all arriving at t=0 with equal priority: SRT runs them
    // shortest-first by prediction.
    let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf());
    let order = [
        BenchmarkId::Mm,   // 1499us
        BenchmarkId::Pl,   // 952
        BenchmarkId::Pf,   // 811
        BenchmarkId::Nn,   // 728
        BenchmarkId::Va,   // 720
        BenchmarkId::Cfd,  // 521
        BenchmarkId::Spmv, // 484
        BenchmarkId::Md,   // 938
    ];
    for (i, id) in order.iter().enumerate() {
        corun = corun
            .job(JobSpec::new(profile(*id, InputClass::Small), SimTime::ZERO).with_seed(i as u64));
    }
    let result = corun.run();
    assert!(all_complete(&result));
    // SPMV (shortest) finishes first; MM (longest) last.
    let spmv_done = result.jobs[6].completed.unwrap();
    let mm_done = result.jobs[0].completed.unwrap();
    assert!(spmv_done < mm_done);
    for j in &result.jobs {
        assert!(j.completed.unwrap() >= spmv_done);
        assert!(j.completed.unwrap() <= mm_done);
    }
}

#[test]
fn back_to_back_preemptions_preserve_all_work() {
    // A long victim preempted repeatedly by a stream of high-priority
    // micro kernels: every invocation still completes all of its tasks.
    let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf()).job(
        JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO).with_priority(1),
    );
    for q in 0..8u64 {
        corun = corun.job(
            JobSpec::new(
                profile(BenchmarkId::Spmv, InputClass::Trivial),
                SimTime::from_ms(2) * (q + 1),
            )
            .with_priority(2)
            .with_seed(q),
        );
    }
    let result = corun.run();
    assert!(all_complete(&result));
    let victim = &result.jobs[0];
    assert!(
        victim.preemptions >= 6,
        "victim only preempted {} times",
        victim.preemptions
    );
    assert_eq!(
        victim.tasks_completed,
        Benchmark::get(BenchmarkId::Va)
            .profile(InputClass::Large)
            .tasks,
        "every task ran exactly once across {} resumes",
        victim.preemptions
    );
}

#[test]
fn reordering_with_idle_gaps_behaves_like_sjf() {
    // With arrivals spaced beyond each kernel's runtime, reordering ==
    // FIFO == SJF; no preemption, everything completes promptly.
    let result = CoRun::new(GpuConfig::k40(), Policy::Reordering)
        .job(JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::ZERO,
        ))
        .job(JobSpec::new(
            profile(BenchmarkId::Mm, InputClass::Small),
            SimTime::from_ms(2),
        ))
        .job(JobSpec::new(
            profile(BenchmarkId::Pf, InputClass::Small),
            SimTime::from_ms(5),
        ))
        .run();
    assert!(all_complete(&result));
    for j in &result.jobs {
        assert_eq!(j.preemptions, 0);
        assert!(
            j.waiting < SimTime::from_us(50),
            "{} waited {}",
            j.name,
            j.waiting
        );
    }
}

#[test]
fn hpf_under_mixed_priorities_and_loops_hits_horizon() {
    // A looping low-priority batch job + sporadic high-priority queries:
    // the loop keeps restarting, queries always cut in front.
    let horizon = SimTime::from_ms(60);
    let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(
            JobSpec::new(profile(BenchmarkId::Pf, InputClass::Large), SimTime::ZERO)
                .with_priority(1)
                .looping(),
        )
        .horizon(horizon);
    for q in 0..5u64 {
        corun = corun.job(
            JobSpec::new(
                profile(BenchmarkId::Spmv, InputClass::Small),
                SimTime::from_ms(10) * (q + 1),
            )
            .with_priority(2)
            .with_seed(q),
        );
    }
    let result = corun.run();
    // All queries done, batch looped several times.
    for q in &result.jobs[1..] {
        assert!(q.completed.is_some());
        assert!(q.turnaround().unwrap() < SimTime::from_ms(2), "{}", q.name);
    }
    assert!(result.jobs[0].completions >= 5);
}

#[test]
fn stuck_victims_under_a_preemption_storm_all_recover() {
    use flep_gpu_sim::FaultConfig;
    use flep_runtime::RecoveryAction;

    // The back-to-back preemption storm, except every persistent grid is
    // guaranteed to ignore its preemption flag: each preemption must go
    // through the watchdog's forced drain. Work is still conserved and
    // every job completes.
    let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .with_faults(FaultConfig::quiet(21).with_stuck_flag(1.0))
        .job(
            JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO)
                .with_priority(1),
        );
    for q in 0..6u64 {
        corun = corun.job(
            JobSpec::new(
                profile(BenchmarkId::Spmv, InputClass::Trivial),
                SimTime::from_ms(3) * (q + 1),
            )
            .with_priority(2)
            .with_seed(q),
        );
    }
    let result = corun.run();
    assert!(all_complete(&result));
    assert!(result.succeeded(), "errors: {:?}", result.errors);
    let forced = result
        .recoveries
        .iter()
        .filter(|r| r.action == RecoveryAction::ForcedDrain)
        .count();
    assert!(forced >= 1, "no forced drains despite stuck victims");
    assert!(result.escalations[1] >= 1, "{:?}", result.escalations);
    assert_eq!(
        result.jobs[0].tasks_completed,
        Benchmark::get(BenchmarkId::Va)
            .profile(InputClass::Large)
            .tasks,
        "task conservation across forced drains"
    );
}
