//! Cluster tests: single-device equivalence with `CoRun` (the
//! no-regression anchor), kill-migrate-restart recovery under scripted
//! device faults, task conservation across migrations, the migration
//! budget, graceful drain, and replay determinism.

use flep_gpu_sim::{DeviceFaultConfig, DeviceFaultKind, GpuConfig};
use flep_runtime::{
    ClusterConfig, ClusterResult, ClusterRun, CoRun, DeviceEventKind, DeviceState, GpuCluster,
    JobSpec, KernelProfile, Policy, RecoveryAction, RuntimeError, WatchdogConfig,
};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

fn tasks_of(id: BenchmarkId, class: InputClass) -> u64 {
    Benchmark::get(id).profile(class).tasks
}

/// The canonical preemption pair: a long low-priority victim and a
/// high-priority latecomer.
fn pair_specs() -> Vec<JobSpec> {
    vec![
        JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO).with_priority(1),
        JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::from_us(200),
        )
        .with_priority(2),
    ]
}

fn cluster_of(devices: u32, specs: Vec<JobSpec>) -> ClusterRun {
    let mut run = ClusterRun::new(ClusterConfig::new(devices, GpuConfig::k40(), Policy::hpf()));
    for s in specs {
        run = run.job(s);
    }
    run
}

fn total_tasks(r: &ClusterResult) -> u64 {
    r.jobs.iter().map(|j| j.tasks_completed).sum()
}

// -- Satellite: N=1 faults-off equivalence --------------------------------

/// A one-device, fault-free cluster is byte-identical to driving the
/// runtime directly: same records, same end time, same escalation
/// histogram. This is what lets every single-device golden stand
/// unchanged while the cluster layer exists above it.
#[test]
fn single_device_cluster_matches_corun_exactly() {
    let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf());
    for s in pair_specs() {
        corun = corun.job(s);
    }
    let solo = corun.run();
    let clustered = cluster_of(1, pair_specs()).run();
    assert_eq!(solo.jobs, clustered.jobs);
    assert_eq!(solo.end_time, clustered.end_time);
    assert_eq!(solo.escalations, clustered.escalations);
    assert!(clustered.succeeded());
    assert_eq!(clustered.migrations, 0);
    assert!(clustered.device_events.is_empty());
    assert!(clustered.reconciles());
}

/// Same equivalence with the watchdog armed on both sides: the cluster
/// schedules the shard's first tick exactly as `CoRun::run` does.
#[test]
fn single_device_cluster_matches_corun_with_watchdog() {
    let mut corun =
        CoRun::new(GpuConfig::k40(), Policy::hpf()).with_watchdog(WatchdogConfig::default());
    for s in pair_specs() {
        corun = corun.job(s);
    }
    let solo = corun.run();
    let mut cfg = ClusterConfig::new(1, GpuConfig::k40(), Policy::hpf());
    cfg.watchdog = Some(WatchdogConfig::default());
    let mut run = ClusterRun::new(cfg);
    for s in pair_specs() {
        run = run.job(s);
    }
    let clustered = run.run();
    assert_eq!(solo.jobs, clustered.jobs);
    assert_eq!(solo.end_time, clustered.end_time);
    assert_eq!(solo.escalations, clustered.escalations);
}

/// The spatial-HPF policy variant holds too (different preemption paths
/// exercise different shard event shapes).
#[test]
fn single_device_equivalence_spatial() {
    let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf_spatial());
    for s in pair_specs() {
        corun = corun.job(s);
    }
    let solo = corun.run();
    let mut run = ClusterRun::new(ClusterConfig::new(
        1,
        GpuConfig::k40(),
        Policy::hpf_spatial(),
    ));
    for s in pair_specs() {
        run = run.job(s);
    }
    let clustered = run.run();
    assert_eq!(solo.jobs, clustered.jobs);
    assert_eq!(solo.end_time, clustered.end_time);
}

// -- Placement ------------------------------------------------------------

/// Same-instant submissions spread across idle devices (least-loaded,
/// then lowest device id), so a two-job co-run on a two-device cluster
/// has no preemption at all.
#[test]
fn placement_spreads_across_devices() {
    let r = cluster_of(2, pair_specs()).run();
    assert!(r.succeeded());
    assert!(r.reconciles());
    assert_eq!(r.completed, 2);
    // Each job had a whole device: nobody ever waited behind the victim,
    // so no preemptions were needed anywhere.
    assert_eq!(r.jobs[0].preemptions, 0);
    assert_eq!(r.jobs[1].preemptions, 0);
    assert_eq!(r.escalations, [0, 0, 0]);
}

// -- Device faults --------------------------------------------------------

/// Permanent death mid-run: the resident job is killed, migrated to the
/// survivor, and resumes from its task counter — every task executed
/// exactly once across both incarnations.
#[test]
fn scripted_death_migrates_and_conserves_tasks() {
    let mut cfg = ClusterConfig::new(2, GpuConfig::k40(), Policy::hpf());
    // Device 0 gets the first job (lowest id among idle devices); kill it
    // while that job is mid-flight.
    cfg.scripted_faults = vec![(SimTime::from_ms(2), 0, DeviceFaultKind::Death)];
    let mut run = ClusterRun::new(cfg);
    run = run.job(
        JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO).with_priority(1),
    );
    let r = run.run();
    assert!(r.reconciles());
    assert_eq!(r.completed, 1, "jobs: {:?}", r.jobs);
    assert_eq!(r.migrations, 1, "recoveries: {:?}", r.recoveries);
    assert!(r
        .recoveries
        .iter()
        .any(|e| e.action == (RecoveryAction::Migrated { from: 0, to: 1 })));
    assert!(r.errors.iter().any(|e| matches!(
        e,
        RuntimeError::DeviceLost {
            device: 0,
            permanent: true
        }
    )));
    // Exactly-once task execution across the migration.
    assert_eq!(
        total_tasks(&r),
        tasks_of(BenchmarkId::Va, InputClass::Large)
    );
    // The device log shows the fault and the deregistration.
    assert!(r
        .device_events
        .iter()
        .any(|e| e.kind == DeviceEventKind::Fault(DeviceFaultKind::Death) && e.device == 0));
    assert!(r
        .device_events
        .iter()
        .any(|e| e.kind == DeviceEventKind::Deregistered && e.device == 0));
}

/// A transient loss on a one-device cluster parks the evicted job until
/// the reset completes, then resumes it on the same device. No work lost,
/// none duplicated.
#[test]
fn transient_loss_parks_and_resumes_after_reset() {
    let mut cfg = ClusterConfig::new(1, GpuConfig::k40(), Policy::hpf());
    cfg.device_faults = Some(DeviceFaultConfig::quiet(7)); // reset latency source
    cfg.scripted_faults = vec![(SimTime::from_ms(2), 0, DeviceFaultKind::TransientLoss)];
    let mut run = ClusterRun::new(cfg);
    run = run.job(
        JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO).with_priority(1),
    );
    let r = run.run();
    assert!(r.reconciles());
    assert_eq!(r.completed, 1, "jobs: {:?}", r.jobs);
    assert_eq!(
        total_tasks(&r),
        tasks_of(BenchmarkId::Va, InputClass::Large)
    );
    // Restored re-placement on the same device still counts as a
    // migration (the job was evicted and relaunched from its counter).
    assert_eq!(r.migrations, 1, "recoveries: {:?}", r.recoveries);
    assert!(r
        .device_events
        .iter()
        .any(|e| e.kind == DeviceEventKind::Restored));
    assert!(r.errors.iter().any(|e| matches!(
        e,
        RuntimeError::DeviceLost {
            permanent: false,
            ..
        }
    )));
}

/// A hang loses preempt doorbells but not work: the watchdog escalation
/// ladder (which runs host-side) eventually rescues the waiting
/// high-priority job, and the device rejoins rotation on its own.
#[test]
fn hang_heals_and_ladder_rescues_waiters() {
    let mut cfg = ClusterConfig::new(1, GpuConfig::k40(), Policy::hpf());
    cfg.device_faults = Some(DeviceFaultConfig::quiet(9));
    cfg.scripted_faults = vec![(SimTime::from_us(500), 0, DeviceFaultKind::Hang)];
    let mut run = ClusterRun::new(cfg);
    for s in pair_specs() {
        run = run.job(s);
    }
    let r = run.run();
    assert!(r.reconciles());
    assert_eq!(r.completed, 2, "jobs: {:?}", r.jobs);
    assert_eq!(r.migrations, 0);
    assert!(r
        .device_events
        .iter()
        .any(|e| e.kind == DeviceEventKind::Fault(DeviceFaultKind::Hang)));
    assert!(r
        .device_events
        .iter()
        .any(|e| e.kind == DeviceEventKind::Restored));
    for (j, want) in r.jobs.iter().zip([
        tasks_of(BenchmarkId::Va, InputClass::Large),
        tasks_of(BenchmarkId::Spmv, InputClass::Small),
    ]) {
        assert_eq!(j.tasks_completed, want, "{} task conservation", j.name);
    }
}

/// Exhausting the migration budget fails the job structurally instead of
/// bouncing it forever.
#[test]
fn migration_budget_exhaustion_is_structural() {
    let mut cfg = ClusterConfig::new(1, GpuConfig::k40(), Policy::hpf());
    cfg.max_migrations = 0;
    cfg.scripted_faults = vec![(SimTime::from_ms(2), 0, DeviceFaultKind::TransientLoss)];
    let mut run = ClusterRun::new(cfg);
    run = run.job(
        JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO).with_priority(1),
    );
    let r = run.run();
    assert!(r.reconciles());
    assert_eq!(r.failed, 1);
    assert_eq!(r.completed, 0);
    assert!(r.errors.iter().any(|e| matches!(
        e,
        RuntimeError::MigrationFailed {
            job: 0,
            attempts: 0
        }
    )));
}

/// When every device is dead before a job arrives, it parks forever and
/// reconciles as stranded — admitted work is never silently dropped.
#[test]
fn arrivals_after_total_loss_strand_visibly() {
    let mut cfg = ClusterConfig::new(1, GpuConfig::k40(), Policy::hpf());
    cfg.scripted_faults = vec![(SimTime::from_us(1), 0, DeviceFaultKind::Death)];
    let mut run = ClusterRun::new(cfg);
    run = run.job(JobSpec::new(
        profile(BenchmarkId::Spmv, InputClass::Small),
        SimTime::from_ms(1),
    ));
    let r = run.run();
    assert!(r.reconciles());
    assert_eq!(r.stranded, 1);
    assert_eq!(r.completed + r.failed, 0);
}

// -- Graceful drain -------------------------------------------------------

#[test]
fn drain_removes_device_from_rotation() {
    let cfg = ClusterConfig::new(2, GpuConfig::k40(), Policy::hpf());
    let (mut cluster, _initial) = GpuCluster::new(&cfg);
    // Draining an idle device deregisters it immediately.
    cluster.drain_device(SimTime::ZERO, 0);
    assert_eq!(cluster.device_state(0), DeviceState::Dead);
    let kinds: Vec<_> = cluster.device_events().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![DeviceEventKind::DrainStarted, DeviceEventKind::Deregistered]
    );
    // New work avoids the drained device.
    let idx = cluster.submit(
        SimTime::ZERO,
        JobSpec::new(profile(BenchmarkId::Spmv, InputClass::Small), SimTime::ZERO),
    );
    assert_eq!(idx, 0);
    assert_eq!(cluster.device_state(1), DeviceState::Healthy);
    assert_eq!(cluster.migrations(), 0);
}

#[test]
fn drain_busy_device_deregisters_after_completion() {
    let mut cfg = ClusterConfig::new(2, GpuConfig::k40(), Policy::hpf());
    cfg.watchdog = Some(WatchdogConfig::default());
    let (mut cluster, initial) = GpuCluster::new(&cfg);
    cluster.submit(
        SimTime::ZERO,
        JobSpec::new(profile(BenchmarkId::Spmv, InputClass::Small), SimTime::ZERO),
    );
    cluster.drain_device(SimTime::ZERO, 0);
    assert_eq!(cluster.device_state(0), DeviceState::Draining);
    // Run the event loop by hand until quiescent.
    let mut queue: Vec<(SimTime, flep_runtime::ClusterEvent)> = initial;
    cluster.for_each_pending(|at, ev| queue.push((at, ev)));
    let mut guard = 0;
    while !queue.is_empty() {
        guard += 1;
        assert!(guard < 1_000_000, "drain never quiesced");
        // Stable min-by-time pop (ties: earliest pushed first).
        let i = (0..queue.len())
            .min_by_key(|&i| (queue[i].0, i))
            .expect("non-empty");
        let (at, ev) = queue.remove(i);
        cluster.dispatch(at, ev);
        cluster.for_each_pending(|at, ev| queue.push((at, ev)));
    }
    assert_eq!(cluster.device_state(0), DeviceState::Dead);
    assert!(cluster
        .device_events()
        .iter()
        .any(|e| e.kind == DeviceEventKind::Deregistered && e.device == 0));
}

// -- Determinism ----------------------------------------------------------

/// Seeded device faults replay identically: same records, logs, and end
/// time on every run.
#[test]
fn cluster_fault_runs_replay_identically() {
    let build = || {
        let mut cfg = ClusterConfig::new(4, GpuConfig::k40(), Policy::hpf());
        cfg.device_faults = Some(
            DeviceFaultConfig::quiet(33)
                .with_hangs(40.0, SimTime::from_ms(1))
                .with_losses(25.0, SimTime::from_ms(2))
                .with_deaths(8.0),
        );
        let mut run = ClusterRun::new(cfg);
        for (i, id) in [
            BenchmarkId::Va,
            BenchmarkId::Spmv,
            BenchmarkId::Pf,
            BenchmarkId::Nn,
            BenchmarkId::Mm,
            BenchmarkId::Pl,
        ]
        .into_iter()
        .enumerate()
        {
            run = run.job(
                JobSpec::new(
                    profile(id, InputClass::Small),
                    SimTime::from_us(100 * i as u64),
                )
                .with_priority(1 + (i as u32 % 3)),
            );
        }
        run.run()
    };
    let a = build();
    let b = build();
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.device_events, b.device_events);
    assert_eq!(a.migrations, b.migrations);
    assert!(a.reconciles());
}

/// Under a seeded storm of all three device-fault classes, every job is
/// still accounted exactly once (completed, failed, or visibly stranded)
/// and completed jobs conserve their task counts.
#[test]
fn device_fault_storm_reconciles() {
    let mut cfg = ClusterConfig::new(3, GpuConfig::k40(), Policy::hpf());
    cfg.device_faults = Some(
        DeviceFaultConfig::quiet(101)
            .with_hangs(60.0, SimTime::from_ms(1))
            .with_losses(40.0, SimTime::from_ms(2))
            .with_deaths(15.0),
    );
    cfg.max_migrations = 16;
    let mut run = ClusterRun::new(cfg);
    let ids = [
        BenchmarkId::Va,
        BenchmarkId::Spmv,
        BenchmarkId::Pf,
        BenchmarkId::Nn,
        BenchmarkId::Mm,
        BenchmarkId::Pl,
        BenchmarkId::Md,
        BenchmarkId::Cfd,
    ];
    for (i, id) in ids.into_iter().enumerate() {
        run = run.job(
            JobSpec::new(
                profile(id, InputClass::Trivial),
                SimTime::from_us(250 * i as u64),
            )
            .with_priority(1 + (i as u32 % 3))
            .with_seed(i as u64),
        );
    }
    let r = run.run();
    assert!(r.reconciles(), "accounting: {r:?}");
    for (i, j) in r.jobs.iter().enumerate() {
        let failed = r.errors.iter().any(|e| {
            matches!(e,
                RuntimeError::MigrationFailed { job, .. }
                | RuntimeError::LaunchRetriesExhausted { job, .. }
                | RuntimeError::LaunchFailed { job, .. } if *job == i)
        });
        if j.completed.is_some() && !failed {
            assert_eq!(
                j.tasks_completed,
                tasks_of(ids[i], InputClass::Trivial),
                "job {i} ({}) task conservation",
                j.name
            );
        }
    }
}
