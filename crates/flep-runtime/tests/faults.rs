//! Fault-injection tests for the runtime: directed escalation-ladder
//! scenarios plus `flep-check` properties asserting that under *any*
//! random `FaultPlan` every job still completes (or fails with a
//! structured error), the ladder never livelocks, and fault runs are
//! deterministic per seed.

use flep_gpu_sim::{FaultConfig, GpuConfig};
use flep_runtime::{
    CoRun, CoRunResult, JobSpec, KernelProfile, Policy, RecoveryAction, RuntimeError,
    WatchdogConfig,
};
use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{assume, require, require_eq, SimRng, SimTime};
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

fn profile(id: BenchmarkId, class: InputClass) -> KernelProfile {
    KernelProfile::of(&Benchmark::get(id), class)
}

fn all_complete(r: &CoRunResult) -> bool {
    r.jobs.iter().all(|j| j.completed.is_some())
}

/// A low-priority long-running victim plus a high-priority latecomer:
/// the canonical preemption pair the ladder has to rescue.
fn victim_pair(faults: FaultConfig) -> CoRunResult {
    CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(
            JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO)
                .with_priority(1),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Spmv, InputClass::Small),
                SimTime::from_us(200),
            )
            .with_priority(2),
        )
        .with_faults(faults)
        .run()
}

fn count_action(r: &CoRunResult, pred: impl Fn(RecoveryAction) -> bool) -> usize {
    r.recoveries.iter().filter(|e| pred(e.action)).count()
}

#[test]
fn stuck_flag_victim_recovers_via_forced_drain() {
    // The victim never polls the flag, so the flag preempt can never land;
    // the watchdog's forced drain (escalation level 2) must rescue the
    // high-priority job.
    let r = victim_pair(FaultConfig::quiet(11).with_stuck_flag(1.0));
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    assert!(r.succeeded(), "errors: {:?}", r.errors);
    assert!(
        count_action(&r, |a| a == RecoveryAction::ForcedDrain) >= 1,
        "recoveries: {:?}",
        r.recoveries
    );
    assert!(r.escalations[1] >= 1, "escalations: {:?}", r.escalations);
    // High-priority job still finishes well before the stuck victim.
    assert!(r.jobs[1].completed.unwrap() < r.jobs[0].completed.unwrap());
}

#[test]
fn wedged_exit_victim_needs_a_kill() {
    // The victim sees the flag but a CTA wedges in its exit path: forced
    // drain cannot help either, only the kill + relaunch rung can.
    let r = victim_pair(FaultConfig::quiet(12).with_stuck_exit(1.0));
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    assert!(
        count_action(&r, |a| a == RecoveryAction::Killed) >= 1,
        "recoveries: {:?}",
        r.recoveries
    );
    assert!(r.escalations[2] >= 1, "escalations: {:?}", r.escalations);
    // Task conservation across the kill: the victim re-executes only the
    // discarded tasks, so completed totals still match exactly.
    let expected = [
        Benchmark::get(BenchmarkId::Va)
            .profile(InputClass::Large)
            .tasks,
        Benchmark::get(BenchmarkId::Spmv)
            .profile(InputClass::Small)
            .tasks,
    ];
    for (j, want) in r.jobs.iter().zip(expected) {
        assert_eq!(j.tasks_completed, want, "{} task conservation", j.name);
    }
}

#[test]
fn dropped_preempt_signal_recovered_by_watchdog() {
    // The doorbell write itself is lost: the victim is healthy but never
    // told to leave. From the runtime's viewpoint this is the same hang as
    // a stuck victim, and the same ladder recovers it.
    let r = victim_pair(FaultConfig::quiet(13).with_signal_drop(1.0));
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    assert!(!r.recoveries.is_empty());
    assert!(r.escalations[1] + r.escalations[2] >= 1);
}

#[test]
fn dropped_notifications_are_reconciled_from_device_state() {
    // Every host notification is dropped; the watchdog must rebuild the
    // terminal ones from device ground truth or the run never ends.
    let r = victim_pair(FaultConfig::quiet(14).with_note_drop(1.0));
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    assert!(
        count_action(&r, |a| a == RecoveryAction::LostNotification) >= 2,
        "recoveries: {:?}",
        r.recoveries
    );
}

#[test]
fn delayed_notifications_only_delay() {
    // Delays (not drops) must not lose or duplicate completions.
    let r = victim_pair(FaultConfig::quiet(15).with_note_delay(1.0, SimTime::from_us(150)));
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    assert!(r.succeeded(), "errors: {:?}", r.errors);
}

#[test]
fn transient_launch_rejections_back_off_and_succeed() {
    let r = victim_pair(FaultConfig::quiet(16).with_launch_reject(0.5));
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    assert!(
        count_action(&r, |a| matches!(a, RecoveryAction::LaunchRetry(_))) >= 1,
        "recoveries: {:?}",
        r.recoveries
    );
}

#[test]
fn poll_wheel_has_no_ghost_polls() {
    // Fault-free with the watchdog armed: every grid registers on launch
    // and deregisters on retirement, often within one poll interval. A
    // tick visiting a job after its grid retired (a ghost poll) would
    // see device phase `Completed` against live runtime state and
    // synthesize a `LostNotification` recovery — so a clean run must
    // end with an empty recovery log and an untouched escalation ladder.
    let r = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(JobSpec::new(
            profile(BenchmarkId::Spmv, InputClass::Small),
            SimTime::ZERO,
        ))
        .with_watchdog(WatchdogConfig::default())
        .run();
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    assert!(r.recoveries.is_empty(), "ghost polls: {:?}", r.recoveries);
    assert_eq!(r.escalations, [0, 0, 0]);

    // Single job, no preemption, every host notification dropped: the
    // watchdog's reconciliation poll is the only way the completion can
    // land, and it must land exactly once. A wheel that failed to
    // deregister the job when the synthesized note retired it would
    // re-reconcile the same grid on every subsequent tick.
    let r = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(JobSpec::new(
            profile(BenchmarkId::Va, InputClass::Small),
            SimTime::ZERO,
        ))
        .with_faults(FaultConfig::quiet(21).with_note_drop(1.0))
        .run();
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    assert_eq!(
        count_action(&r, |a| a == RecoveryAction::LostNotification),
        1,
        "one lost completion must be reconciled by exactly one poll: {:?}",
        r.recoveries
    );
}

#[test]
fn fault_log_records_what_fired() {
    let r = victim_pair(FaultConfig::quiet(17).with_stuck_flag(1.0));
    assert!(
        !r.faults.is_empty(),
        "the device fault log should report injected faults"
    );
}

#[test]
fn runaway_looping_job_reports_budget_exhaustion() {
    // A looping job with no horizon never finishes; the event budget must
    // surface as a structured error instead of a panic, with the partial
    // records intact.
    let r = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(
            JobSpec::new(profile(BenchmarkId::Nn, InputClass::Trivial), SimTime::ZERO)
                .with_priority(1)
                .looping(),
        )
        .with_event_budget(50_000)
        .run();
    assert!(
        r.errors
            .iter()
            .any(|e| matches!(e, RuntimeError::EventBudgetExhausted { .. })),
        "errors: {:?}",
        r.errors
    );
    assert!(!r.succeeded());
    assert!(
        r.jobs[0].completions > 0,
        "partial records survive the abort"
    );
}

#[test]
fn acceptance_every_high_priority_job_completes_under_stuck_preemption() {
    // The PR's acceptance bar: with injected stuck-preemption faults, 100%
    // of high-priority jobs complete via the escalation ladder and every
    // recovery is reported.
    let faults = FaultConfig::quiet(18)
        .with_stuck_flag(1.0)
        .with_signal_drop(0.3);
    let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(
            JobSpec::new(profile(BenchmarkId::Va, InputClass::Large), SimTime::ZERO)
                .with_priority(1),
        )
        .with_faults(faults);
    for (i, id) in [BenchmarkId::Spmv, BenchmarkId::Pf, BenchmarkId::Nn]
        .into_iter()
        .enumerate()
    {
        corun = corun.job(
            JobSpec::new(
                profile(id, InputClass::Small),
                SimTime::from_us(150 + 400 * i as u64),
            )
            .with_priority(2),
        );
    }
    let r = corun.run();
    for (i, j) in r.jobs.iter().enumerate().skip(1) {
        assert!(
            j.completed.is_some(),
            "high-priority job {i} never completed"
        );
    }
    assert!(r.jobs[0].completed.is_some(), "victim also completes");
    assert!(
        !r.recoveries.is_empty(),
        "stuck preemptions must be visible as recovery events"
    );
    let escalated: u64 = r.escalations[1] + r.escalations[2];
    assert!(escalated >= 1, "escalations: {:?}", r.escalations);
}

#[test]
fn kill_fires_while_forced_drain_still_in_flight() {
    // Edge case: the forced drain is *dispatched* (rung 2) but the victim
    // wedges in its exit path, so the drain never finishes; the kill rung
    // must fire on the same victim while the drain is still nominally in
    // flight. CFD's single huge tasks make the window wide, and a tight
    // drain deadline makes the ladder climb quickly.
    let wd = flep_runtime::WatchdogConfig {
        drain_deadline: SimTime::from_us(300),
        ..flep_runtime::WatchdogConfig::default()
    };
    let r = CoRun::new(GpuConfig::k40(), Policy::hpf())
        .job(
            JobSpec::new(profile(BenchmarkId::Cfd, InputClass::Large), SimTime::ZERO)
                .with_priority(1),
        )
        .job(
            JobSpec::new(
                profile(BenchmarkId::Spmv, InputClass::Small),
                SimTime::from_us(200),
            )
            .with_priority(2),
        )
        .with_faults(FaultConfig::quiet(21).with_stuck_exit(1.0))
        .with_watchdog(wd)
        .run();
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    // The ladder reached both rungs for the same victim, in order:
    // the first ForcedDrain precedes the first Kill.
    let first_drain = r
        .recoveries
        .iter()
        .position(|e| e.action == RecoveryAction::ForcedDrain);
    let first_kill = r
        .recoveries
        .iter()
        .position(|e| e.action == RecoveryAction::Killed);
    let (drain, kill) = (
        first_drain.expect("forced drain fired"),
        first_kill.expect("kill fired"),
    );
    assert!(drain < kill, "recoveries: {:?}", r.recoveries);
    assert!(r.escalations[2] >= 1, "escalations: {:?}", r.escalations);
    // Task conservation across the drain-then-kill pile-up: nothing runs
    // twice, nothing is lost.
    let expected = [
        Benchmark::get(BenchmarkId::Cfd)
            .profile(InputClass::Large)
            .tasks,
        Benchmark::get(BenchmarkId::Spmv)
            .profile(InputClass::Small)
            .tasks,
    ];
    for (j, want) in r.jobs.iter().zip(expected) {
        assert_eq!(j.tasks_completed, want, "{} task conservation", j.name);
    }
}

#[test]
fn wedged_victim_recovering_late_is_not_double_escalated() {
    // Edge case: the victim wedges (so the ladder escalates to a kill),
    // *and* its terminal notifications are delayed — the killed grid's
    // stale completion note arrives after the relaunch. The stale-note
    // guard must drop it: the job completes exactly once, its task total
    // is exact, and the recovery ledger reconciles (each kill is preceded
    // by its own forced drain; histogram counts each drain once).
    let faults = FaultConfig::quiet(22)
        .with_stuck_exit(1.0)
        .with_note_delay(1.0, SimTime::from_us(400));
    let r = victim_pair(faults);
    assert!(all_complete(&r), "jobs: {:?}", r.jobs);
    let drains = count_action(&r, |a| a == RecoveryAction::ForcedDrain);
    let kills = count_action(&r, |a| a == RecoveryAction::Killed);
    assert!(kills >= 1, "recoveries: {:?}", r.recoveries);
    assert!(
        kills <= drains,
        "every kill is preceded by its own drain ({kills} kills, {drains} drains)"
    );
    // Exactly-once completion accounting despite the late stale notes.
    for j in &r.jobs {
        assert_eq!(j.completions, 1, "{} completed exactly once", j.name);
    }
    let expected = [
        Benchmark::get(BenchmarkId::Va)
            .profile(InputClass::Large)
            .tasks,
        Benchmark::get(BenchmarkId::Spmv)
            .profile(InputClass::Small)
            .tasks,
    ];
    for (j, want) in r.jobs.iter().zip(expected) {
        assert_eq!(j.tasks_completed, want, "{} task conservation", j.name);
    }
    assert!(
        r.escalations[1] + r.escalations[2] <= drains as u64,
        "histogram never double-counts an escalated drain"
    );
}

// -- flep-check properties -----------------------------------------------

/// One generated job: (bench index, arrival_us, priority, seed).
type JobTuple = (u64, u64, u64, u64);

fn gen_jobs(rng: &mut SimRng, max_jobs: u64) -> Vec<JobTuple> {
    let n = rng.uniform_u64(1, max_jobs) as usize;
    (0..n)
        .map(|_| {
            (
                rng.uniform_u64(0, 7),
                rng.uniform_u64(0, 1_999),
                rng.uniform_u64(1, 3),
                rng.u64(),
            )
        })
        .collect()
}

/// Generated fault knobs, as per-mille rates so scalar shrinking applies,
/// nested in two 4-tuples (the shrinker covers tuples up to arity 6):
/// ((seed, reject, sig_drop, sig_delay), (stuck_flag, stuck_exit,
/// note_drop, note_delay)).
type FaultTuple = ((u64, u64, u64, u64), (u64, u64, u64, u64));

fn gen_faults(rng: &mut SimRng) -> FaultTuple {
    (
        (
            rng.u64(),
            // Launch rejections are capped below 1: a job whose every
            // launch is rejected exhausts its bounded retries and
            // *correctly* fails; the completion property targets
            // recoverable faults.
            rng.uniform_u64(0, 400),
            rng.uniform_u64(0, 1000),
            rng.uniform_u64(0, 1000),
        ),
        (
            rng.uniform_u64(0, 1000),
            rng.uniform_u64(0, 1000),
            rng.uniform_u64(0, 1000),
            rng.uniform_u64(0, 1000),
        ),
    )
}

fn faults_of(t: &FaultTuple) -> FaultConfig {
    let &((seed, reject, sig_drop, sig_delay), (stuck_flag, stuck_exit, note_drop, note_delay)) = t;
    let pm = |v: u64| v as f64 / 1000.0;
    FaultConfig::quiet(seed)
        .with_launch_reject(pm(reject))
        .with_signal_drop(pm(sig_drop))
        .with_signal_delay(pm(sig_delay), SimTime::from_us(120))
        .with_stuck_flag(pm(stuck_flag))
        .with_stuck_exit(pm(stuck_exit))
        .with_note_drop(pm(note_drop))
        .with_note_delay(pm(note_delay), SimTime::from_us(90))
}

fn corun_of(jobs: &[JobTuple], spatial: bool, faults: FaultConfig) -> CoRun {
    let policy = if spatial {
        Policy::hpf_spatial()
    } else {
        Policy::hpf()
    };
    let mut corun = CoRun::new(GpuConfig::k40(), policy).with_faults(faults);
    for &(bidx, arrival_us, priority, seed) in jobs {
        let id = BenchmarkId::ALL[(bidx as usize) % BenchmarkId::ALL.len()];
        corun = corun.job(
            JobSpec::new(
                profile(id, InputClass::Trivial),
                SimTime::from_us(arrival_us),
            )
            .with_priority(priority as u32)
            .with_seed(seed),
        );
    }
    corun
}

/// Under any random fault plan, every job either completes with its exact
/// task count or is reported as a structured launch failure — nothing
/// hangs, nothing is silently lost, and the escalation ladder terminates
/// (the run finishes within the event budget).
#[test]
fn any_fault_plan_every_job_completes_or_fails_structurally() {
    check(
        "any_fault_plan_every_job_completes_or_fails_structurally",
        CheckConfig::default(),
        |rng: &mut SimRng| (gen_jobs(rng, 5), rng.bool(), gen_faults(rng)),
        |(jobs, spatial, faults)| {
            assume!(!jobs.is_empty());
            let r = corun_of(jobs, *spatial, faults_of(faults)).run();
            require!(
                !r.errors
                    .iter()
                    .any(|e| matches!(e, RuntimeError::EventBudgetExhausted { .. })),
                "escalation ladder livelocked: {:?}",
                r.errors
            );
            for (i, j) in r.jobs.iter().enumerate() {
                let failed_launch = r.errors.iter().any(|e| {
                    matches!(
                        e,
                        RuntimeError::LaunchRetriesExhausted { job, .. }
                        | RuntimeError::LaunchFailed { job, .. } if *job == i
                    )
                });
                require!(
                    j.completed.is_some() || failed_launch,
                    "job {i} neither completed nor failed structurally: {j:?}"
                );
                if j.completed.is_some() {
                    // Exactly-once task execution across drops, delays,
                    // forced drains, and kills.
                    let id = BenchmarkId::ALL[(jobs[i].0 as usize) % BenchmarkId::ALL.len()];
                    require_eq!(
                        j.tasks_completed,
                        Benchmark::get(id).profile(InputClass::Trivial).tasks,
                        "job {} task conservation",
                        i
                    );
                }
            }
            Ok(())
        },
    );
}

/// High-priority jobs always complete under recoverable fault plans (no
/// launch rejections): the ladder guarantees eventual preemption.
#[test]
fn any_fault_plan_high_priority_always_completes() {
    check(
        "any_fault_plan_high_priority_always_completes",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let mut faults = gen_faults(rng);
            faults.0 .1 = 0; // no launch rejections: completion must be total
            (gen_jobs(rng, 5), rng.bool(), faults)
        },
        |(jobs, spatial, faults)| {
            assume!(!jobs.is_empty());
            let r = corun_of(jobs, *spatial, faults_of(faults)).run();
            let top = jobs.iter().map(|j| j.2).max().unwrap();
            for (i, j) in r.jobs.iter().enumerate() {
                if jobs[i].2 == top {
                    require!(
                        j.completed.is_some(),
                        "high-priority job {i} never completed; recoveries: {:?}",
                        r.recoveries
                    );
                }
            }
            Ok(())
        },
    );
}

/// Fault runs are deterministic: the same seed and workload replay to the
/// same end time, fault log, recovery log, and escalation histogram.
#[test]
fn same_fault_seed_replays_identically() {
    check(
        "same_fault_seed_replays_identically",
        CheckConfig::with_cases(24),
        |rng: &mut SimRng| (gen_jobs(rng, 4), rng.bool(), gen_faults(rng)),
        |(jobs, spatial, faults)| {
            assume!(!jobs.is_empty());
            let a = corun_of(jobs, *spatial, faults_of(faults)).run();
            let b = corun_of(jobs, *spatial, faults_of(faults)).run();
            require_eq!(a.end_time, b.end_time, "end time");
            require_eq!(a.faults.len(), b.faults.len(), "fault log length");
            require_eq!(a.recoveries, b.recoveries, "recovery log");
            require_eq!(a.escalations, b.escalations, "escalation histogram");
            let done_a: Vec<_> = a.jobs.iter().map(|j| j.completed).collect();
            let done_b: Vec<_> = b.jobs.iter().map(|j| j.completed).collect();
            require_eq!(done_a, done_b, "completion times");
            Ok(())
        },
    );
}

/// The ladder is bounded: a preemption needs at most one forced drain and
/// one kill, so kills never exceed forced drains and every escalated drain
/// shows up in the histogram.
#[test]
fn escalation_ladder_is_bounded() {
    check(
        "escalation_ladder_is_bounded",
        CheckConfig::with_cases(32),
        |rng: &mut SimRng| (gen_jobs(rng, 4), gen_faults(rng)),
        |(jobs, faults)| {
            assume!(!jobs.is_empty());
            let r = corun_of(jobs, false, faults_of(faults)).run();
            let forced = r
                .recoveries
                .iter()
                .filter(|e| e.action == RecoveryAction::ForcedDrain)
                .count() as u64;
            let killed = r
                .recoveries
                .iter()
                .filter(|e| e.action == RecoveryAction::Killed)
                .count() as u64;
            require!(
                killed <= forced,
                "a kill always follows a forced drain ({killed} kills, {forced} drains)"
            );
            require!(
                r.escalations[1] + r.escalations[2] <= forced,
                "histogram counts escalated drains at most once each"
            );
            Ok(())
        },
    );
}
