//! The deterministic chaos harness: for seeded correlated-fault schedules
//! over arbitrary failure topologies — with health scoring, the circuit
//! breaker, and placement constraints all engaged — the control plane
//! must keep its invariants:
//!
//! * **Ledger conservation** — every registered job ends exactly once as
//!   completed, failed, or stranded.
//! * **No double-run** — a one-shot job never completes twice and never
//!   executes more tasks than it has, across any number of migrations.
//! * **Quarantine isolation** — a device whose breaker is open receives
//!   no placements until it is readmitted.
//! * **Bounded-fault liveness** — correlated outages are transient, so
//!   every run settles every job (no stranded work, no event-budget
//!   abort) no matter how hard the chaos schedule hits.
//!
//! Runs on the in-tree `flep-check` harness: seeded schedules, scalar
//! shrinking toward the minimal failing chaos configuration.

use flep_gpu_sim::{CorrelatedFaultConfig, FailureTopology, GpuConfig};
use flep_runtime::{
    ClusterConfig, ClusterResult, ClusterRun, DeviceEvent, DeviceEventKind, HealthConfig, JobSpec,
    KernelProfile, PlacementConfig, Policy, RuntimeError,
};
use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{assume, require, require_eq, SimRng, SimTime};
use flep_workloads::{Benchmark, BenchmarkId, InputClass};

/// One chaos case: topology levels, the two correlated rates (events per
/// simulated second), job count, and the root seed. Plain scalars so the
/// harness shrinks toward the minimal failing schedule.
type ChaosCase = (u32, u32, u32, u64, u64, u64);

fn gen_case(rng: &mut SimRng) -> ChaosCase {
    (
        rng.uniform_u64(1, 3) as u32,                                // zones
        rng.uniform_u64(1, 2) as u32,                                // racks per zone
        rng.uniform_u64(1, 2) as u32,                                // devices per rack
        rng.uniform_u64(0, 2000),                                    // zone-outage rate per s
        rng.uniform_u64(0, 2000).max(1) ^ (rng.u64() & 0xFFFF_FFFF), // seed entropy
        rng.uniform_u64(1, 6),                                       // jobs
    )
}

fn run_case(&(zones, racks, dpr, zone_rate, seed, njobs): &ChaosCase) -> ClusterResult {
    let topo = FailureTopology::new(zones, racks, dpr);
    let mut cfg = ClusterConfig::new(topo.devices(), GpuConfig::k40(), Policy::hpf());
    cfg.topology = Some(topo);
    cfg.health = Some(HealthConfig::default().with_threshold(1.0));
    cfg.placement = PlacementConfig {
        anti_affinity: true,
        spread: true,
    };
    // Both correlated classes on: zone outages at the generated rate,
    // rack power-cycles at half of it. Transient only — no permanent
    // deaths — so liveness must hold regardless of how hard this hits.
    cfg.correlated_faults = Some(
        CorrelatedFaultConfig::quiet(seed)
            .with_zone_outages(zone_rate as f64, SimTime::from_ms(1))
            .with_rack_cycles(
                zone_rate as f64 / 2.0,
                SimTime::from_us(500),
                SimTime::from_us(100),
            ),
    );
    cfg.max_migrations = 16;
    let mut run = ClusterRun::new(cfg);
    for i in 0..njobs {
        let id = BenchmarkId::ALL[(seed.wrapping_add(i) as usize) % BenchmarkId::ALL.len()];
        run = run.job(
            JobSpec::new(
                KernelProfile::of(&Benchmark::get(id), InputClass::Trivial),
                SimTime::from_us(200 * i),
            )
            .with_priority(1 + (i as u32 % 3))
            .with_tenant(i as u32 % 3)
            .with_seed(seed ^ i),
        );
    }
    run.run()
}

/// Per-device quarantine intervals `(open_at, readmit_at)` from the
/// device-event log; an interval still open at the end closes at
/// `SimTime::MAX`.
fn quarantine_intervals(events: &[DeviceEvent], devices: u32) -> Vec<Vec<(SimTime, SimTime)>> {
    let mut intervals = vec![Vec::new(); devices as usize];
    let mut open: Vec<Option<SimTime>> = vec![None; devices as usize];
    for e in events {
        let d = e.device as usize;
        match e.kind {
            DeviceEventKind::Quarantined => open[d] = Some(e.at),
            DeviceEventKind::Readmitted => {
                if let Some(at) = open[d].take() {
                    intervals[d].push((at, e.at));
                }
            }
            _ => {}
        }
    }
    for (d, o) in open.into_iter().enumerate() {
        if let Some(at) = o {
            intervals[d].push((at, SimTime::MAX));
        }
    }
    intervals
}

#[test]
fn chaos_schedules_preserve_control_plane_invariants() {
    check(
        "chaos_invariants",
        CheckConfig::with_cases(32),
        gen_case,
        |case| {
            assume!(case.5 >= 1);
            let r = run_case(case);

            // Ledger conservation: every job settles exactly once.
            require!(
                r.reconciles(),
                "completed {} + failed {} + stranded {} != jobs {}",
                r.completed,
                r.failed,
                r.stranded,
                r.jobs.len()
            );

            // No double-run: one-shot jobs complete at most once and never
            // execute more tasks than they have, migrations included.
            for (i, j) in r.jobs.iter().enumerate() {
                require!(
                    j.completions <= 1,
                    "job {i} ({}) completed {} times",
                    j.name,
                    j.completions
                );
            }

            // Quarantine isolation: no placement lands strictly inside a
            // breaker-open window.
            let devices = case.0 * case.1 * case.2;
            let intervals = quarantine_intervals(&r.device_events, devices);
            for &(at, job, device) in &r.placements {
                for &(open, close) in &intervals[device as usize] {
                    require!(
                        !(at > open && at < close),
                        "job {job} placed on device {device} at {at} inside \
                         quarantine window [{open}, {close})"
                    );
                }
            }

            // Bounded-fault liveness: all faults are transient, so nothing
            // strands and the event budget is never the thing that stops
            // the run.
            require_eq!(r.stranded, 0, "transient-only chaos stranded work");
            for e in &r.errors {
                require!(
                    !matches!(e, RuntimeError::EventBudgetExhausted { .. }),
                    "chaos run aborted on event budget: {e:?}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn chaos_runs_replay_deterministically() {
    check(
        "chaos_replay",
        CheckConfig::with_cases(8),
        gen_case,
        |case| {
            assume!(case.5 >= 1);
            let a = run_case(case);
            let b = run_case(case);
            require_eq!(a.jobs, b.jobs);
            require_eq!(a.end_time, b.end_time);
            require_eq!(a.summary, b.summary);
            require_eq!(a.placements, b.placements);
            require_eq!(a.device_events, b.device_events);
            Ok(())
        },
    );
}

/// The quiet chaos configuration (both rates zero) is byte-identical to
/// no correlated config at all — the faults-off anchor of the chaos
/// layer, as a plain test so it always runs even if the generator never
/// shrinks to zero.
#[test]
fn quiet_chaos_config_is_transparent() {
    let base = &(2u32, 2u32, 2u32, 0u64, 77u64, 4u64);
    let quiet = run_case(base);
    let mut cfg = ClusterConfig::new(8, GpuConfig::k40(), Policy::hpf());
    // A quiet correlated config still implies the watchdog (the CoRun
    // rule); arm it explicitly on the no-config side for a fair diff.
    cfg.watchdog = Some(flep_runtime::WatchdogConfig::default());
    cfg.topology = Some(FailureTopology::new(2, 2, 2));
    cfg.health = Some(HealthConfig::default().with_threshold(1.0));
    cfg.placement = PlacementConfig {
        anti_affinity: true,
        spread: true,
    };
    cfg.max_migrations = 16;
    let mut run = ClusterRun::new(cfg);
    for i in 0..4u64 {
        let id = BenchmarkId::ALL[(77usize + i as usize) % BenchmarkId::ALL.len()];
        run = run.job(
            JobSpec::new(
                KernelProfile::of(&Benchmark::get(id), InputClass::Trivial),
                SimTime::from_us(200 * i),
            )
            .with_priority(1 + (i as u32 % 3))
            .with_tenant(i as u32 % 3)
            .with_seed(77 ^ i),
        );
    }
    let none = run.run();
    assert_eq!(quiet.jobs, none.jobs);
    assert_eq!(quiet.end_time, none.end_time);
    assert_eq!(quiet.device_events, none.device_events);
    assert_eq!(quiet.summary, none.summary);
}
