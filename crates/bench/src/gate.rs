//! The perf-regression gate: parses perf-smoke artifacts (`BENCH_*.json`)
//! and compares each benchmark's `median_ns` against a checked-in
//! baseline, flagging medians that regressed beyond a tolerance.
//!
//! `flep-sim-core`'s JSON module is an emitter only, so this module
//! carries its own reader — deliberately minimal, scoped to the artifact
//! shape the perf smokes emit: a flat `"results"` array of objects with
//! a `"name"` string and a `"median_ns"` unsigned integer. Anything
//! outside that shape is reported as a parse error rather than guessed
//! at.

/// One benchmark's median as recorded in an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateEntry {
    /// Benchmark name (the artifact's `name` field).
    pub name: String,
    /// Recorded median, nanoseconds.
    pub median_ns: u64,
}

/// One baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: u64,
    /// Current median, nanoseconds.
    pub current_ns: u64,
    /// `current / baseline` (infinite for a zero baseline with nonzero
    /// current).
    pub ratio: f64,
    /// Whether the current median exceeds the tolerance.
    pub regressed: bool,
}

/// Extracts the `results` entries from an artifact document.
///
/// # Errors
///
/// Returns a description when the document has no `results` array or an
/// entry lacks `name`/`median_ns`.
pub fn parse_artifact(text: &str) -> Result<Vec<GateEntry>, String> {
    let start = text
        .find("\"results\":[")
        .ok_or_else(|| "no \"results\" array".to_string())?
        + "\"results\":[".len();
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut obj_start = None;
    for (i, c) in text[start..].char_indices() {
        let pos = start + i;
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(pos);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1).ok_or("unbalanced braces")?;
                if depth == 0 {
                    let obj = &text[obj_start.take().ok_or("stray '}'")?..=pos];
                    entries.push(parse_entry(obj)?);
                }
            }
            ']' if depth == 0 => return Ok(entries),
            _ => {}
        }
    }
    Err("unterminated results array".into())
}

/// Parses one flat results object.
fn parse_entry(obj: &str) -> Result<GateEntry, String> {
    let name = string_field(obj, "name").ok_or_else(|| format!("entry without name: {obj}"))?;
    let median_ns =
        uint_field(obj, "median_ns").ok_or_else(|| format!("{name}: no median_ns field"))?;
    Ok(GateEntry { name, median_ns })
}

/// The string value of `"key":"..."` in a flat object (no escape
/// processing beyond passing `\"` through — artifact names never contain
/// escapes).
fn string_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// The unsigned-integer value of `"key":123` in a flat object.
fn uint_field(obj: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let digits: String = obj[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Compares current medians against the baseline at `tolerance_percent`.
///
/// Benchmarks present only on one side are skipped (renames and new
/// benchmarks must not fail the gate); the caller can surface them from
/// the row count. A zero baseline median never regresses — there is
/// nothing meaningful to be 15% worse than.
#[must_use]
pub fn compare(
    current: &[GateEntry],
    baseline: &[GateEntry],
    tolerance_percent: f64,
) -> Vec<GateRow> {
    current
        .iter()
        .filter_map(|c| {
            let b = baseline.iter().find(|b| b.name == c.name)?;
            let ratio = if b.median_ns == 0 {
                if c.median_ns == 0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                c.median_ns as f64 / b.median_ns as f64
            };
            let limit = (b.median_ns as f64) * (1.0 + tolerance_percent / 100.0);
            Some(GateRow {
                name: c.name.clone(),
                baseline_ns: b.median_ns,
                current_ns: c.median_ns,
                ratio,
                regressed: b.median_ns > 0 && c.median_ns as f64 > limit,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{"suite":"flep micro","samples":3,"results":[{"name":"a/b","median_ns":100,"min_ns":90,"max_ns":110},{"name":"c","median_ns":250}],"sweep_wall_ns":5}"#;

    #[test]
    fn parses_artifact_entries() {
        let e = parse_artifact(DOC).unwrap();
        assert_eq!(
            e,
            vec![
                GateEntry {
                    name: "a/b".into(),
                    median_ns: 100
                },
                GateEntry {
                    name: "c".into(),
                    median_ns: 250
                },
            ]
        );
    }

    #[test]
    fn parse_rejects_shapeless_documents() {
        assert!(parse_artifact("{}").is_err());
        assert!(parse_artifact(r#"{"results":["#).is_err());
        assert!(parse_artifact(r#"{"results":[{"median_ns":1}]}"#).is_err());
        assert!(parse_artifact(r#"{"results":[{"name":"x"}]}"#).is_err());
    }

    #[test]
    fn empty_results_array_is_empty_not_an_error() {
        assert_eq!(parse_artifact(r#"{"results":[]}"#).unwrap(), vec![]);
    }

    fn entry(name: &str, median_ns: u64) -> GateEntry {
        GateEntry {
            name: name.into(),
            median_ns,
        }
    }

    #[test]
    fn compare_flags_only_over_tolerance() {
        let baseline = [entry("a", 100), entry("b", 100), entry("c", 100)];
        let current = [entry("a", 114), entry("b", 116), entry("c", 90)];
        let rows = compare(&current, &baseline, 15.0);
        assert_eq!(
            rows.iter().map(|r| r.regressed).collect::<Vec<_>>(),
            vec![false, true, false]
        );
        assert!((rows[1].ratio - 1.16).abs() < 1e-9);
    }

    #[test]
    fn compare_skips_unmatched_and_zero_baselines() {
        let baseline = [entry("gone", 100), entry("z", 0)];
        let current = [entry("new", 500), entry("z", 400)];
        let rows = compare(&current, &baseline, 15.0);
        // "new" has no baseline; "z"'s zero baseline cannot regress.
        assert_eq!(rows.len(), 1);
        assert!(!rows[0].regressed);
        assert!(rows[0].ratio.is_infinite());
    }
}
