//! Shared helpers for the `flep-bench` experiment binaries: consistent
//! table printing, machine-readable JSON emission, and run configuration
//! from environment variables.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper. Set `FLEP_SEED` / `FLEP_REPEATS` to override the defaults,
//! `FLEP_THREADS` to control the experiment runner's worker-thread count,
//! and `FLEP_JSON` to also emit the structured rows as JSON (see
//! [`emit_json`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

use flep_core::prelude::ExpConfig;
use flep_sim_core::json::ToJson;

/// Parses environment variable `name` as an unsigned integer, warning on
/// stderr — naming the variable and the offending value — when it is set
/// but not parsable, instead of silently falling back to the default.
fn env_uint<T: std::str::FromStr + std::fmt::Display + Copy>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Ok(v) => match parse_uint(name, &v, default) {
            Ok(n) => n,
            Err(warning) => {
                eprintln!("{warning}");
                default
            }
        },
        Err(_) => default,
    }
}

/// The pure core of [`env_uint`]: parses `raw`, or returns the exact
/// (stable) warning line printed for an invalid value.
fn parse_uint<T: std::str::FromStr + std::fmt::Display + Copy>(
    name: &str,
    raw: &str,
    default: T,
) -> Result<T, String> {
    raw.parse().map_err(|_| {
        format!("{name}: invalid value {raw:?} (want an unsigned integer); using {default}")
    })
}

/// Validates a repeat count: zero repeats cannot produce a figure, so it
/// is rejected with the exact warning [`exp_config`] prints.
fn validate_repeats(n: u32) -> Result<u32, String> {
    if n == 0 {
        Err("FLEP_REPEATS: invalid value 0 (want >= 1); using 3".to_string())
    } else {
        Ok(n)
    }
}

/// Reads the experiment configuration from `FLEP_SEED` / `FLEP_REPEATS`
/// (defaults: 42 / 3). Unparsable values are reported on stderr and
/// replaced by the default. `FLEP_REPEATS=0` is also rejected — every
/// figure needs at least one repeat.
///
/// The runner's `FLEP_THREADS` is validated eagerly here too (by asking
/// the runner for its configured count), so a typo like `FLEP_THREADS=all`
/// warns once up front rather than mid-experiment.
#[must_use]
pub fn exp_config() -> ExpConfig {
    let seed = env_uint("FLEP_SEED", 42u64);
    let repeats = match validate_repeats(env_uint("FLEP_REPEATS", 3u32)) {
        Ok(n) => n,
        Err(warning) => {
            eprintln!("{warning}");
            3
        }
    };
    let _ = flep_core::runner::configured_threads();
    ExpConfig { seed, repeats }
}

/// Default correlated-outage rates for the chaos sweep (events per
/// simulated second, fleet-wide).
pub const CHAOS_RATES_DEFAULT: &str = "0,400,1600";

/// Default failure topologies for the chaos sweep (`ZxRxD` form:
/// zones × racks-per-zone × devices-per-rack).
pub const CHAOS_TOPOS_DEFAULT: &str = "1x1x8,2x2x2,4x2x1";

/// The pure core of the `FLEP_CHAOS_RATES` knob: parses a comma-separated
/// list of correlated-outage rates (events per simulated second), or
/// returns the exact (stable) warning line printed for an invalid value.
/// Every entry must parse as a finite number `>= 0`.
pub fn parse_chaos_rates(raw: &str) -> Result<Vec<f64>, String> {
    let parsed: Option<Vec<f64>> = raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
        })
        .collect();
    match parsed {
        Some(rates) if !rates.is_empty() => Ok(rates),
        _ => Err(format!(
            "FLEP_CHAOS_RATES: invalid value {raw:?} (want comma-separated rates/s >= 0); \
             using {CHAOS_RATES_DEFAULT}"
        )),
    }
}

/// The pure core of the `FLEP_CHAOS_TOPOS` knob: parses a comma-separated
/// list of `ZxRxD` failure topologies, or returns the exact (stable)
/// warning line printed for an invalid value. Every level must be an
/// integer `>= 1`.
pub fn parse_chaos_topos(raw: &str) -> Result<Vec<flep_gpu_sim::FailureTopology>, String> {
    let invalid = || {
        format!(
            "FLEP_CHAOS_TOPOS: invalid value {raw:?} (want comma-separated ZxRxD topologies); \
             using {CHAOS_TOPOS_DEFAULT}"
        )
    };
    let mut topos = Vec::new();
    for spec in raw.split(',') {
        let levels: Vec<u32> = spec
            .trim()
            .split('x')
            .map(|s| s.parse::<u32>().ok().filter(|&v| v >= 1))
            .collect::<Option<_>>()
            .ok_or_else(invalid)?;
        let [zones, racks, devices] = levels[..] else {
            return Err(invalid());
        };
        topos.push(flep_gpu_sim::FailureTopology::new(zones, racks, devices));
    }
    if topos.is_empty() {
        return Err(invalid());
    }
    Ok(topos)
}

/// Reads a chaos-sweep knob through its pure parser, warning on stderr —
/// with the parser's exact message — when the value is invalid, and
/// falling back to `default`.
pub fn env_chaos<T>(name: &str, default: &str, parse: impl Fn(&str) -> Result<T, String>) -> T {
    let raw = std::env::var(name).unwrap_or_else(|_| default.to_string());
    match parse(&raw) {
        Ok(v) => v,
        Err(warning) => {
            eprintln!("{warning}");
            parse(default).expect("default parses")
        }
    }
}

/// Emits an experiment's structured rows as JSON when `FLEP_JSON` is set.
///
/// `FLEP_JSON=-` prints the document to stdout; any other value is treated
/// as a directory and the document is written to `<dir>/<name>.json`
/// (creating the directory if needed). Unset means no JSON output, so the
/// default text tables stay untouched.
///
/// The document wraps the rows with the experiment name so files are
/// self-describing: `{"experiment":"fig17_overhead","rows":...}`.
pub fn emit_json(name: &str, rows: &dyn ToJson) {
    let Ok(dest) = std::env::var("FLEP_JSON") else {
        return;
    };
    let doc = flep_sim_core::json::JsonValue::object([
        ("experiment", name.to_json()),
        ("rows", rows.to_json()),
    ]);
    let rendered = doc.render();
    if dest == "-" {
        println!("{rendered}");
    } else {
        let dir = std::path::Path::new(&dest);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("FLEP_JSON: cannot create {dest}: {e}");
            return;
        }
        let path = dir.join(format!("{name}.json"));
        match std::fs::write(&path, rendered + "\n") {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("FLEP_JSON: cannot write {}: {e}", path.display()),
        }
    }
}

/// Prints a header block naming the experiment and the paper reference.
pub fn header(name: &str, paper_ref: &str, expectation: &str) {
    println!("==============================================================");
    println!("{name}");
    println!("paper: {paper_ref}");
    println!("expected shape: {expectation}");
    println!("==============================================================");
}

/// Prints a simple aligned two-column table.
pub fn table2(title_a: &str, title_b: &str, rows: &[(String, String)]) {
    let w = rows
        .iter()
        .map(|(a, _)| a.len())
        .chain([title_a.len()])
        .max()
        .unwrap_or(8);
    println!("{title_a:<w$}  {title_b}");
    for (a, b) in rows {
        println!("{a:<w$}  {b}");
    }
}

/// Formats a mean ± std pair.
#[must_use]
pub fn mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.2} ± {std:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_config_defaults() {
        // Env vars unset in the test environment.
        let c = exp_config();
        assert!(c.repeats >= 1);
    }

    #[test]
    fn mean_std_format() {
        assert_eq!(mean_std(1.234, 0.5), "1.23 ± 0.50");
    }

    /// The warning lines `exp_config` prints for bad knob values are
    /// stable, exact strings: they name the knob, the offending value,
    /// the rule, and the fallback — nothing machine-dependent.
    #[test]
    fn bad_seed_warning_text_is_stable() {
        assert_eq!(parse_uint("FLEP_SEED", "3", 42u64), Ok(3));
        assert_eq!(
            parse_uint("FLEP_SEED", "banana", 42u64),
            Err(r#"FLEP_SEED: invalid value "banana" (want an unsigned integer); using 42"#.into())
        );
        assert_eq!(
            parse_uint("FLEP_SEED", "-1", 42u64),
            Err(r#"FLEP_SEED: invalid value "-1" (want an unsigned integer); using 42"#.into())
        );
        assert_eq!(
            parse_uint("FLEP_REPEATS", "2.5", 3u32),
            Err(r#"FLEP_REPEATS: invalid value "2.5" (want an unsigned integer); using 3"#.into())
        );
    }

    #[test]
    fn zero_repeats_warning_text_is_stable() {
        assert_eq!(validate_repeats(2), Ok(2));
        assert_eq!(
            validate_repeats(0),
            Err("FLEP_REPEATS: invalid value 0 (want >= 1); using 3".into())
        );
    }

    /// The chaos-sweep knob warnings are stable, exact strings too: knob,
    /// offending value, rule, fallback.
    #[test]
    fn bad_chaos_rates_warning_text_is_stable() {
        assert_eq!(parse_chaos_rates("0, 150,600"), Ok(vec![0.0, 150.0, 600.0]));
        for bad in ["", "fast", "10,-5", "10,inf", "10,,20"] {
            assert_eq!(
                parse_chaos_rates(bad),
                Err(format!(
                    "FLEP_CHAOS_RATES: invalid value {bad:?} (want comma-separated rates/s >= 0); \
                     using 0,400,1600"
                ))
            );
        }
    }

    #[test]
    fn bad_chaos_topos_warning_text_is_stable() {
        use flep_gpu_sim::FailureTopology;
        assert_eq!(
            parse_chaos_topos("1x1x8, 2x2x2"),
            Ok(vec![
                FailureTopology::new(1, 1, 8),
                FailureTopology::new(2, 2, 2)
            ])
        );
        for bad in ["", "2x2", "2x2x2x2", "0x1x8", "axbxc", "2x2x2,"] {
            assert_eq!(
                parse_chaos_topos(bad),
                Err(format!(
                    "FLEP_CHAOS_TOPOS: invalid value {bad:?} \
                     (want comma-separated ZxRxD topologies); using 1x1x8,2x2x2,4x2x1"
                ))
            );
        }
    }

    /// The baked-in defaults must themselves parse (the env reader falls
    /// back to them on a bad value).
    #[test]
    fn chaos_defaults_parse() {
        assert_eq!(parse_chaos_rates(CHAOS_RATES_DEFAULT).unwrap().len(), 3);
        let topos = parse_chaos_topos(CHAOS_TOPOS_DEFAULT).unwrap();
        assert_eq!(topos.len(), 3);
        for t in topos {
            assert_eq!(t.devices(), 8, "chaos cells compare equal fleet sizes");
        }
    }

    /// The `FLEP_THREADS` warning (validated eagerly by `exp_config` via
    /// the runner) is stable too, with no available-parallelism number
    /// baked in.
    #[test]
    fn bad_threads_warning_text_is_stable() {
        use flep_core::runner::parse_threads;
        assert_eq!(parse_threads("8"), Ok(8));
        assert_eq!(
            parse_threads("all"),
            Err(
                r#"FLEP_THREADS: invalid value "all" (want an integer >= 1); using available parallelism"#
                    .into()
            )
        );
        assert_eq!(
            parse_threads("0"),
            Err(
                r#"FLEP_THREADS: invalid value "0" (want an integer >= 1); using available parallelism"#
                    .into()
            )
        );
    }
}
