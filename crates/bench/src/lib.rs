//! Shared helpers for the `flep-bench` experiment binaries: consistent
//! table printing and run configuration from environment variables.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper. Set `FLEP_SEED` / `FLEP_REPEATS` to override the defaults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flep_core::prelude::ExpConfig;

/// Reads the experiment configuration from `FLEP_SEED` / `FLEP_REPEATS`
/// (defaults: 42 / 3).
#[must_use]
pub fn exp_config() -> ExpConfig {
    let seed = std::env::var("FLEP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let repeats = std::env::var("FLEP_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    ExpConfig { seed, repeats }
}

/// Prints a header block naming the experiment and the paper reference.
pub fn header(name: &str, paper_ref: &str, expectation: &str) {
    println!("==============================================================");
    println!("{name}");
    println!("paper: {paper_ref}");
    println!("expected shape: {expectation}");
    println!("==============================================================");
}

/// Prints a simple aligned two-column table.
pub fn table2(title_a: &str, title_b: &str, rows: &[(String, String)]) {
    let w = rows
        .iter()
        .map(|(a, _)| a.len())
        .chain([title_a.len()])
        .max()
        .unwrap_or(8);
    println!("{title_a:<w$}  {title_b}");
    for (a, b) in rows {
        println!("{a:<w$}  {b}");
    }
}

/// Formats a mean ± std pair.
#[must_use]
pub fn mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.2} ± {std:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_config_defaults() {
        // Env vars unset in the test environment.
        let c = exp_config();
        assert!(c.repeats >= 1);
    }

    #[test]
    fn mean_std_format() {
        assert_eq!(mean_std(1.234, 0.5), "1.23 ± 0.50");
    }
}
