//! Regenerates Fig. 11: system-throughput degradation for the Fig. 10
//! co-runs (makespan-based; see EXPERIMENTS.md for the metric note).

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;
use flep_metrics::Summary;

fn main() {
    header(
        "Figure 11 — system-throughput degradation (equal-priority co-runs)",
        "Fig. 11 (§6.3.1)",
        "small degradation, avg ~5.4% in the paper",
    );
    let rows = experiments::fig10_11_equal_priority(&GpuConfig::k40(), exp_config());
    emit_json("fig11_stp", &rows);
    println!("{:<12} {:>12}", "pair (S_L)", "degradation");
    for r in &rows {
        println!(
            "{:<12} {:>11.1}%",
            format!("{}_{}", r.short.name(), r.long.name()),
            r.stp_degradation * 100.0
        );
    }
    let s = Summary::of(&rows.iter().map(|r| r.stp_degradation).collect::<Vec<_>>());
    println!(
        "\nmean {:.1}%   max {:.1}%   (paper: 5.4% avg)",
        s.mean * 100.0,
        s.max * 100.0
    );
}
