//! Regenerates Fig. 14: throughput degradation under FFS with
//! max_overhead = 10%.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;
use flep_metrics::Summary;

fn main() {
    header(
        "Figure 14 — throughput degradation under FFS",
        "Fig. 14 (§6.3.3)",
        "degradation close to the configured max_overhead (10%) with small variance",
    );
    let out = experiments::fig13_14_ffs(&GpuConfig::k40(), exp_config());
    emit_json("fig14_ffs_overhead", &out);
    println!("{:<12} {:>12}", "pair (A_B)", "degradation");
    for r in &out.degradation {
        println!(
            "{:<12} {:>11.1}%",
            format!("{}_{}", r.hi.name(), r.lo.name()),
            r.value * 100.0
        );
    }
    let s = Summary::of(&out.degradation.iter().map(|r| r.value).collect::<Vec<_>>());
    println!(
        "\nmean {:.1}% ± {:.1}%   (configured budget: {:.0}%)",
        s.mean * 100.0,
        s.std_dev * 100.0,
        out.max_overhead * 100.0
    );
}
