//! Regenerates Fig. 8: performance improvement for high-priority kernels
//! under FLEP/HPF over MPS co-runs.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;
use flep_metrics::Summary;

fn main() {
    header(
        "Figure 8 — high-priority kernel speedup under FLEP/HPF",
        "Fig. 8 (§6.3.1)",
        "avg ~10.1X, max ~24.2X (SPMV_NN), min ~4.1X (MM_PF)",
    );
    let rows = experiments::fig08_hpf_speedups(&GpuConfig::k40(), exp_config());
    emit_json("fig08_hpf_speedups", &rows);
    println!("{:<12} {:>10}", "pair (A_B)", "speedup");
    for r in &rows {
        println!(
            "{:<12} {:>9.1}X",
            format!("{}_{}", r.hi.name(), r.lo.name()),
            r.value
        );
    }
    let s = Summary::of(&rows.iter().map(|r| r.value).collect::<Vec<_>>());
    println!(
        "\nmean {:.1}X   max {:.1}X   min {:.1}X   (paper: 10.1X / 24.2X / 4.1X)",
        s.mean, s.max, s.min
    );
}
