//! Regenerates Fig. 12: ANTT improvement on three-kernel co-runs, plus the
//! kernel-reordering comparison.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;
use flep_metrics::Summary;

fn main() {
    header(
        "Figure 12 — ANTT improvement on three-kernel co-runs",
        "Fig. 12 (§6.3.2)",
        "FLEP avg ~6.6X (max ~20.2X); kernel reordering only ~2.3%",
    );
    let rows = experiments::fig12_three_kernel(&GpuConfig::k40(), exp_config());
    emit_json("fig12_three_kernel", &rows);
    println!(
        "{:<16} {:>10} {:>12}",
        "triplet (A_B_C)", "FLEP", "reordering"
    );
    for r in &rows {
        println!(
            "{:<16} {:>9.1}X {:>11.2}X",
            format!(
                "{}_{}_{}",
                r.triplet.0.name(),
                r.triplet.1.name(),
                r.triplet.2.name()
            ),
            r.flep_improvement,
            r.reorder_improvement
        );
    }
    let f = Summary::of(&rows.iter().map(|r| r.flep_improvement).collect::<Vec<_>>());
    let o = Summary::of(
        &rows
            .iter()
            .map(|r| r.reorder_improvement)
            .collect::<Vec<_>>(),
    );
    println!(
        "\nFLEP mean {:.1}X max {:.1}X   reordering mean {:.2}X   (paper: 6.6X / 20.2X vs ~1.02X)",
        f.mean, f.max, o.mean
    );
}
