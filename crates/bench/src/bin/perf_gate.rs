//! The perf-regression gate: compares freshly produced perf artifacts
//! against their checked-in baselines and exits nonzero when any shared
//! benchmark's `median_ns` regressed more than the tolerance.
//!
//! Usage: `perf_gate <current.json> <baseline.json> [<current2> <baseline2> ...]`
//!
//! Every pair is compared and every regressing row is printed before the
//! process exits — one bad artifact never hides another. A missing
//! baseline skips that pair with a warning (first run on a new benchmark
//! suite); a missing or unparsable *current* artifact is an error — the
//! producing stage was supposed to have just written it.
//!
//! Knob: `FLEP_PERF_TOLERANCE` — allowed regression in percent
//! (default 15). The applied value and where it came from are printed in
//! the header so a CI log is self-explanatory.

use flep_bench::gate::{compare, parse_artifact, GateEntry};
use std::process::ExitCode;

/// The tolerance to apply plus a human-readable provenance tag.
fn tolerance() -> (f64, &'static str) {
    match std::env::var("FLEP_PERF_TOLERANCE") {
        Ok(v) => match v.parse::<f64>() {
            Ok(t) if t >= 0.0 => (t, "from FLEP_PERF_TOLERANCE"),
            _ => {
                eprintln!(
                    "FLEP_PERF_TOLERANCE: invalid value {v:?} (want a percentage >= 0); using 15"
                );
                (15.0, "default; FLEP_PERF_TOLERANCE was invalid")
            }
        },
        Err(_) => (15.0, "default; set FLEP_PERF_TOLERANCE to override"),
    }
}

fn load(path: &str, what: &str) -> Result<Vec<GateEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{what} {path}: {e}"))?;
    parse_artifact(&text).map_err(|e| format!("{what} {path}: {e}"))
}

/// Compares one `(current, baseline)` pair, printing every row. Returns
/// `Ok(regressed_row_count)` or an error string for a broken artifact.
fn gate_pair(current_path: &str, baseline_path: &str, tol: f64) -> Result<usize, String> {
    if !std::path::Path::new(baseline_path).exists() {
        eprintln!(
            "perf_gate: no baseline at {baseline_path}; skipping (record one to arm the gate)"
        );
        return Ok(0);
    }
    let current = load(current_path, "current artifact")?;
    let baseline = load(baseline_path, "baseline")?;

    let rows = compare(&current, &baseline, tol);
    println!("perf_gate: {current_path} vs {baseline_path}");
    println!(
        "{:<40} {:>14} {:>14} {:>8}",
        "benchmark", "baseline_ns", "current_ns", "ratio"
    );
    for r in &rows {
        println!(
            "{:<40} {:>14} {:>14} {:>7.3}{}",
            r.name,
            r.baseline_ns,
            r.current_ns,
            r.ratio,
            if r.regressed { " REGRESSED" } else { "" },
        );
    }
    let unmatched = current.len() - rows.len();
    if unmatched > 0 {
        eprintln!("perf_gate: {unmatched} benchmark(s) have no baseline entry (skipped)");
    }
    let regressed = rows.iter().filter(|r| r.regressed).count();
    if regressed > 0 {
        eprintln!(
            "perf_gate: {regressed} benchmark(s) regressed more than {tol}% vs {baseline_path}"
        );
    } else {
        println!("perf_gate: ok ({} compared)", rows.len());
    }
    Ok(regressed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!("usage: perf_gate <current.json> <baseline.json> [<current2> <baseline2> ...]");
        return ExitCode::FAILURE;
    }

    let (tol, tol_source) = tolerance();
    println!(
        "perf_gate: tolerance {tol}% ({tol_source}); {} artifact pair(s)",
        args.len() / 2
    );

    // Walk every pair before deciding the exit code so a regression in
    // the first artifact cannot mask one in the last.
    let mut total_regressed = 0usize;
    let mut broken = 0usize;
    for pair in args.chunks_exact(2) {
        match gate_pair(&pair[0], &pair[1], tol) {
            Ok(n) => total_regressed += n,
            Err(e) => {
                eprintln!("perf_gate: {e}");
                broken += 1;
            }
        }
    }

    if total_regressed > 0 || broken > 0 {
        eprintln!(
            "perf_gate: FAIL — {total_regressed} regressed row(s), {broken} unreadable artifact(s) across {} pair(s)",
            args.len() / 2
        );
        ExitCode::FAILURE
    } else {
        println!("perf_gate: all pairs ok");
        ExitCode::SUCCESS
    }
}
