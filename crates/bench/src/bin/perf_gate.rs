//! The perf-regression gate: compares a freshly produced perf artifact
//! against its checked-in baseline and exits nonzero when any shared
//! benchmark's `median_ns` regressed more than the tolerance.
//!
//! Usage: `perf_gate <current.json> <baseline.json>`
//!
//! A missing baseline skips the gate with a warning (first run on a new
//! benchmark suite); a missing or unparsable *current* artifact is an
//! error — the producing stage was supposed to have just written it.
//!
//! Knob: `FLEP_PERF_TOLERANCE` — allowed regression in percent
//! (default 15).

use flep_bench::gate::{compare, parse_artifact, GateEntry};
use std::process::ExitCode;

fn tolerance() -> f64 {
    match std::env::var("FLEP_PERF_TOLERANCE") {
        Ok(v) => {
            match v.parse::<f64>() {
                Ok(t) if t >= 0.0 => t,
                _ => {
                    eprintln!("FLEP_PERF_TOLERANCE: invalid value {v:?} (want a percentage >= 0); using 15");
                    15.0
                }
            }
        }
        Err(_) => 15.0,
    }
}

fn load(path: &str, what: &str) -> Result<Vec<GateEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{what} {path}: {e}"))?;
    parse_artifact(&text).map_err(|e| format!("{what} {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [current_path, baseline_path] = args.as_slice() else {
        eprintln!("usage: perf_gate <current.json> <baseline.json>");
        return ExitCode::FAILURE;
    };

    if !std::path::Path::new(baseline_path).exists() {
        eprintln!(
            "perf_gate: no baseline at {baseline_path}; skipping (record one to arm the gate)"
        );
        return ExitCode::SUCCESS;
    }
    let current = match load(current_path, "current artifact") {
        Ok(e) => e,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match load(baseline_path, "baseline") {
        Ok(e) => e,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    let tol = tolerance();
    let rows = compare(&current, &baseline, tol);
    println!(
        "perf_gate: {} vs {} (tolerance {tol}%)",
        current_path, baseline_path
    );
    println!(
        "{:<40} {:>14} {:>14} {:>8}",
        "benchmark", "baseline_ns", "current_ns", "ratio"
    );
    for r in &rows {
        println!(
            "{:<40} {:>14} {:>14} {:>7.3}{}",
            r.name,
            r.baseline_ns,
            r.current_ns,
            r.ratio,
            if r.regressed { " REGRESSED" } else { "" },
        );
    }
    let unmatched = current.len() - rows.len();
    if unmatched > 0 {
        eprintln!("perf_gate: {unmatched} benchmark(s) have no baseline entry (skipped)");
    }

    let regressed = rows.iter().filter(|r| r.regressed).count();
    if regressed > 0 {
        eprintln!(
            "perf_gate: FAIL — {regressed} benchmark(s) regressed more than {tol}% vs {baseline_path}"
        );
        ExitCode::FAILURE
    } else {
        println!("perf_gate: ok ({} compared)", rows.len());
        ExitCode::SUCCESS
    }
}
