//! Regenerates Fig. 1: slowdown of high-priority kernels in MPS co-runs.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;
use flep_metrics::Summary;

fn main() {
    header(
        "Figure 1 — slowdown of high-priority kernels (MPS, no preemption)",
        "Fig. 1 (§2.2)",
        "severe slowdowns, up to ~32.6X in the paper",
    );
    let rows = experiments::fig01_mps_slowdown(&GpuConfig::k40(), exp_config());
    emit_json("fig01_mps_slowdown", &rows);
    println!("{:<12} {:>10}", "pair (A_B)", "slowdown");
    for r in &rows {
        println!(
            "{:<12} {:>9.1}X",
            format!("{}_{}", r.hi.name(), r.lo.name()),
            r.value
        );
    }
    let s = Summary::of(&rows.iter().map(|r| r.value).collect::<Vec<_>>());
    println!(
        "\nmean {:.1}X   max {:.1}X   min {:.1}X   (paper max: 32.6X)",
        s.mean, s.max, s.min
    );
}
