//! Regenerates Fig. 9: high-priority speedup vs launch delay.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;

fn main() {
    header(
        "Figure 9 — speedup vs delay between kernel invocations",
        "Fig. 9 (§6.3.1)",
        "speedup decays ~linearly with delay and plateaus at ~1 beyond the victim's runtime",
    );
    let curves = experiments::fig09_delay_sweep(&GpuConfig::k40(), exp_config());
    emit_json("fig09_delay_sweep", &curves);
    for c in curves {
        println!("\npair {}_{}:", c.hi.name(), c.lo.name());
        println!("  {:>12} {:>10}", "delay", "speedup");
        for (delay, speedup) in c.points {
            println!("  {:>12} {:>9.2}X", delay.to_string(), speedup);
        }
    }
}
