//! Regenerates Fig. 15: preemption-overhead reduction through spatial
//! preemption.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;
use flep_metrics::Summary;

fn main() {
    header(
        "Figure 15 — preemption-overhead reduction from spatial preemption",
        "Fig. 15 (§6.4)",
        "avg ~31% reduction vs temporal preemption, up to ~41%",
    );
    let rows = experiments::fig15_spatial(&GpuConfig::k40(), exp_config());
    emit_json("fig15_spatial", &rows);
    println!(
        "{:<8} {:>12} {:>12} {:>11}",
        "victim", "temporal", "spatial", "reduction"
    );
    for r in &rows {
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>10.0}%",
            r.victim.name(),
            r.temporal_overhead * 100.0,
            r.spatial_overhead * 100.0,
            r.reduction * 100.0
        );
    }
    let s = Summary::of(&rows.iter().map(|r| r.reduction).collect::<Vec<_>>());
    println!(
        "\nmean reduction {:.0}%   max {:.0}%   (paper: 31% / 41%)",
        s.mean * 100.0,
        s.max * 100.0
    );
}
