//! Regenerates Fig. 17: single-kernel overhead of FLEP vs kernel slicing.

use flep_bench::{emit_json, header};
use flep_core::prelude::*;

fn main() {
    header(
        "Figure 17 — single-kernel overhead: FLEP vs kernel slicing",
        "Fig. 17 (§6.5)",
        "FLEP ~2.5% avg; slicing ~8% avg, much worse for CFD/MD/SPMV/MM, better only for VA",
    );
    let rows = experiments::fig17_overhead(&GpuConfig::k40());
    emit_json("fig17_overhead", &rows);
    println!("{:<6} {:>10} {:>10}", "bench", "FLEP", "slicing");
    for r in &rows {
        println!(
            "{:<6} {:>9.1}% {:>9.1}%",
            r.id.name(),
            r.flep * 100.0,
            r.slicing * 100.0
        );
    }
    let fa = rows.iter().map(|r| r.flep).sum::<f64>() / rows.len() as f64;
    let sa = rows.iter().map(|r| r.slicing).sum::<f64>() / rows.len() as f64;
    println!(
        "\nFLEP avg {:.1}%   slicing avg {:.1}%   (paper: 2.5% vs 8%)",
        fa * 100.0,
        sa * 100.0
    );
}
