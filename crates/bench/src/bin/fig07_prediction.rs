//! Regenerates Fig. 7: kernel duration prediction errors.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;

fn main() {
    header(
        "Figure 7 — kernel duration prediction errors",
        "Fig. 7 (§6.2)",
        "avg ~6.9%, range ~2.7%-12.2%; NN/MM/VA regular (low), MD/SPMV irregular (high)",
    );
    let errors = experiments::fig07_prediction_errors(exp_config());
    emit_json("fig07_prediction_errors", &errors);
    println!("{:<6} {:>10}", "bench", "error");
    for (id, e) in &errors {
        println!("{:<6} {:>9.1}%", id.name(), e * 100.0);
    }
    let avg = errors.iter().map(|(_, e)| e).sum::<f64>() / errors.len() as f64;
    println!("\naverage: {:.1}%   (paper: 6.9%)", avg * 100.0);
}
