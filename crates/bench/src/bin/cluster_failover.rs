//! The cluster failover sweep: device count × device-fault rate, each
//! cell one deterministic multi-device co-run under the kill-migrate-
//! restart recovery path. Reports completion accounting (completed /
//! failed / stranded — the reconciliation ledger), migrations, fired
//! faults, and simulated makespan per cell.
//!
//! Every cell is an independent `runner::run_cells` unit seeded by
//! `cell_seed`, so the table and JSON rows are byte-identical at any
//! `FLEP_THREADS`.
//!
//! Knobs: `FLEP_CLUSTER_DEVICES` (comma-separated device counts, default
//! `1,2,4,8`); `FLEP_CLUSTER_FAULTS` (comma-separated death rates per
//! simulated second, default `0,20,100`; hangs and transient losses scale
//! at 4× and 2× the death rate); `FLEP_SEED`; `FLEP_REPEATS` (wall-clock
//! samples); `FLEP_JSON` / `FLEP_BENCH_JSON` (artifacts).

use flep_bench::{emit_json, exp_config, header};
use flep_core::runner::{cell_seed, run_cells};
use flep_gpu_sim::{DeviceFaultConfig, GpuConfig};
use flep_metrics::percentile_ns;
use flep_runtime::{
    ClusterConfig, ClusterResult, ClusterRun, DeviceEventKind, JobSpec, KernelProfile, Policy,
};
use flep_sim_core::json::{JsonValue, ToJson};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, BenchmarkId, InputClass};
use std::time::Instant;

/// The eight-job mix every cell runs: one of each benchmark class,
/// arrivals staggered 250µs apart, priorities cycling over three levels.
const MIX: [BenchmarkId; 8] = [
    BenchmarkId::Va,
    BenchmarkId::Spmv,
    BenchmarkId::Pf,
    BenchmarkId::Nn,
    BenchmarkId::Mm,
    BenchmarkId::Pl,
    BenchmarkId::Md,
    BenchmarkId::Cfd,
];

fn env_list(name: &str, default: &str) -> Vec<f64> {
    let raw = std::env::var(name).unwrap_or_else(|_| default.into());
    let parsed: Vec<f64> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&v| v >= 0.0)
        .collect();
    if parsed.is_empty() {
        eprintln!("{name}: no valid values in {raw:?}; using {default}");
        default
            .split(',')
            .map(|s| s.parse().expect("default list"))
            .collect()
    } else {
        parsed
    }
}

fn devices() -> Vec<u32> {
    env_list("FLEP_CLUSTER_DEVICES", "1,2,4,8")
        .into_iter()
        .map(|v| (v as u32).max(1))
        .collect()
}

fn fault_rates() -> Vec<f64> {
    env_list("FLEP_CLUSTER_FAULTS", "0,20,100")
}

/// One sweep cell: `devices` GPUs, seeded device faults at `rate`
/// deaths/s (hangs at 4×, transient losses at 2×).
fn run_cell(devices: u32, rate: f64, seed: u64) -> ClusterResult {
    let mut cfg = ClusterConfig::new(devices, GpuConfig::k40(), Policy::hpf());
    if rate > 0.0 {
        cfg.device_faults = Some(
            DeviceFaultConfig::quiet(seed)
                .with_hangs(4.0 * rate, SimTime::from_ms(1))
                .with_losses(2.0 * rate, SimTime::from_ms(2))
                .with_deaths(rate),
        );
        cfg.max_migrations = 16;
    }
    let mut run = ClusterRun::new(cfg);
    for (i, id) in MIX.into_iter().enumerate() {
        run = run.job(
            JobSpec::new(
                KernelProfile::of(&Benchmark::get(id), InputClass::Small),
                SimTime::from_us(250 * i as u64),
            )
            .with_priority(1 + (i as u32 % 3))
            .with_seed(seed ^ i as u64),
        );
    }
    run.run()
}

struct Row {
    devices: u32,
    rate: f64,
    completed: u64,
    failed: u64,
    stranded: u64,
    migrations: u64,
    device_faults: usize,
    device_events: usize,
    makespan: SimTime,
}

impl ToJson for Row {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("devices", u64::from(self.devices).to_json()),
            ("fault_rate_per_s", self.rate.to_json()),
            ("completed", self.completed.to_json()),
            ("failed", self.failed.to_json()),
            ("stranded", self.stranded.to_json()),
            ("migrations", self.migrations.to_json()),
            ("device_faults", (self.device_faults as u64).to_json()),
            ("device_events", (self.device_events as u64).to_json()),
            ("makespan_ns", self.makespan.as_ns().to_json()),
        ])
    }
}

fn sweep(seed: u64, devices: &[u32], rates: &[f64]) -> Vec<Row> {
    let cells: Vec<(u32, f64)> = devices
        .iter()
        .flat_map(|&d| rates.iter().map(move |&r| (d, r)))
        .collect();
    run_cells(cells.len(), |i| {
        let (d, r) = cells[i];
        let result = run_cell(d, r, cell_seed(seed, i, 0));
        assert!(
            result.reconciles(),
            "cell {i} (devices {d}, rate {r}) lost or double-ran a job"
        );
        Row {
            devices: d,
            rate: r,
            completed: result.completed,
            failed: result.failed,
            stranded: result.stranded,
            migrations: result.migrations,
            device_faults: result
                .device_events
                .iter()
                .filter(|e| matches!(e.kind, DeviceEventKind::Fault(_)))
                .count(),
            device_events: result.device_events.len(),
            makespan: result.end_time,
        }
    })
}

fn main() {
    header(
        "cluster_failover — kill-migrate-restart under device faults",
        "multi-GPU sharding over the FLEP runtime (robustness; paper §3.2/§6 risk analysis)",
        "faults-off rows complete everything with zero migrations; under faults every job is still accounted exactly once and makespan grows with the fault rate, shrinks with devices",
    );
    let exp = exp_config();
    let devices = devices();
    let rates = fault_rates();

    // Deterministic results: repeats only sample wall-clock. One warmup
    // sweep, then `repeats` timed ones; the artifact records the median.
    let mut rows = sweep(exp.seed, &devices, &rates);
    let mut wall_ns: Vec<u64> = Vec::new();
    for _ in 0..exp.repeats {
        let t0 = Instant::now();
        rows = sweep(exp.seed, &devices, &rates);
        wall_ns.push(t0.elapsed().as_nanos() as u64);
    }
    wall_ns.sort_unstable();
    let median_wall = percentile_ns(&wall_ns, 50, 100);

    emit_json("cluster_failover", &rows);

    println!(
        "{:>7} {:>8} {:>9} {:>6} {:>8} {:>10} {:>6} {:>7} {:>12}",
        "devices",
        "faults/s",
        "completed",
        "failed",
        "stranded",
        "migrations",
        "faults",
        "events",
        "makespan"
    );
    for r in &rows {
        println!(
            "{:>7} {:>8.1} {:>9} {:>6} {:>8} {:>10} {:>6} {:>7} {:>12}",
            r.devices,
            r.rate,
            r.completed,
            r.failed,
            r.stranded,
            r.migrations,
            r.device_faults,
            r.device_events,
            r.makespan.to_string(),
        );
    }
    println!(
        "total: {} cells ({} device counts x {} fault rates, {} jobs each), sweep wall median {:.2}s",
        rows.len(),
        devices.len(),
        rates.len(),
        MIX.len(),
        median_wall as f64 / 1e9,
    );

    // Perf-smoke artifact: same shape as the micro-bench recorder, with
    // the deterministic simulated makespan in the `*_ns` fields.
    if let Ok(path) = std::env::var("FLEP_BENCH_JSON") {
        let doc = JsonValue::object([
            ("suite", JsonValue::Str("flep cluster failover".into())),
            ("samples", exp.repeats.to_json()),
            (
                "results",
                JsonValue::array(rows.iter().map(|r| {
                    JsonValue::object([
                        (
                            "name",
                            format!("cluster_failover/d{}_f{:.1}", r.devices, r.rate).to_json(),
                        ),
                        ("median_ns", r.makespan.as_ns().to_json()),
                        ("min_ns", r.makespan.as_ns().to_json()),
                        ("max_ns", r.makespan.as_ns().to_json()),
                        ("migrations", r.migrations.to_json()),
                        ("completed", r.completed.to_json()),
                    ])
                })),
            ),
            ("sweep_wall_ns", median_wall.to_json()),
        ]);
        match std::fs::write(&path, doc.render() + "\n") {
            Ok(()) => eprintln!("cluster-failover artifact written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
