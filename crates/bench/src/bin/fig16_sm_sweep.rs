//! Regenerates Fig. 16: high-priority kernel performance when yielding
//! more SMs than needed.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;

fn main() {
    header(
        "Figure 16 — performance vs number of yielded SMs",
        "Fig. 16 (§6.4)",
        "speedup grows with yielded SMs but saturates; paper max ~2.22X over the minimal yield",
    );
    let curves = experiments::fig16_sm_sweep(&GpuConfig::k40(), exp_config());
    emit_json("fig16_sm_sweep", &curves);
    for c in curves {
        println!(
            "\n{} (trivial) preempting {} (large):",
            c.hi.name(),
            c.victim.name()
        );
        println!("  {:>4} {:>9}", "SMs", "speedup");
        for (sms, speedup) in c.points {
            println!("  {sms:>4} {speedup:>8.2}X");
        }
    }
}
