//! Ablation studies for the design choices called out in DESIGN.md §4:
//! the amortizing-factor trade-off, HPF's preemption-overhead term, and
//! the one-reader flag-broadcast optimization.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;

fn main() {
    let cfg = GpuConfig::k40();

    header(
        "Ablation 1 — amortizing factor L: overhead vs preemption latency",
        "§4.1 / §7",
        "overhead falls with L; preemption latency grows linearly with L",
    );
    for id in [BenchmarkId::Nn, BenchmarkId::Va] {
        let rows = experiments::ablation_l_sweep(&cfg, id);
        emit_json(&format!("ablation_l_sweep_{}", id.name()), &rows);
        println!("\n{id}:");
        println!("  {:>5} {:>10} {:>14}", "L", "overhead", "preempt latency");
        for row in rows {
            println!(
                "  {:>5} {:>9.2}% {:>14}",
                row.amortize,
                row.overhead * 100.0,
                row.latency.to_string()
            );
        }
    }

    println!();
    header(
        "Ablation 2 — HPF's preemption-overhead term (§5.2.1)",
        "Fig. 6 / §5.2.1",
        "naive SRT preempts for gains smaller than the preemption cost; the overhead term declines",
    );
    let a = experiments::ablation_overhead_aware(&cfg, exp_config());
    emit_json("ablation_overhead_aware", &a);
    println!(
        "overhead-aware: {:>3} preemptions, makespan {}, total waiting {}",
        a.preemptions_aware, a.makespan_aware, a.waiting_aware
    );
    println!(
        "naive SRT     : {:>3} preemptions, makespan {}, total waiting {}",
        a.preemptions_naive, a.makespan_naive, a.waiting_naive
    );

    println!();
    header(
        "Ablation 3 — one-reader flag broadcast (§4.1 optimization)",
        "§4.1",
        "per-thread polling multiplies the transform overhead by orders of magnitude",
    );
    let rows = experiments::ablation_per_thread_poll(&cfg);
    emit_json("ablation_per_thread_poll", &rows);
    println!("{:<6} {:>12} {:>12}", "bench", "broadcast", "per-thread");
    for row in rows {
        println!(
            "{:<6} {:>11.1}% {:>11.1}%",
            row.id.name(),
            row.broadcast * 100.0,
            row.per_thread * 100.0
        );
    }
}
