//! Sensitivity study: the Fig. 8 headline experiment replayed on devices
//! of 8, 15, and 30 SMs. Head-of-line blocking — and therefore FLEP's
//! benefit — is width-independent; this bin verifies the reproduction
//! does not secretly depend on the K40's 15 SMs.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;

fn main() {
    header(
        "Sensitivity — HPF speedup vs device width",
        "extension (the paper evaluates only the 15-SM K40)",
        "large speedups on every width; magnitude tracks victim/preemptor runtime ratio",
    );
    let rows = experiments::sensitivity_sm_scaling(exp_config());
    emit_json("sensitivity_sm_scaling", &rows);
    println!("{:>6} {:>12} {:>10} {:>10}", "SMs", "mean", "min", "max");
    for row in rows {
        println!(
            "{:>6} {:>11.1}X {:>9.1}X {:>9.1}X",
            row.num_sms, row.mean_speedup, row.min_speedup, row.max_speedup
        );
    }
}
