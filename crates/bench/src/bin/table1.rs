//! Regenerates Table 1: benchmark standalone times on three inputs and the
//! tuned amortizing factors.

use flep_bench::{emit_json, header};
use flep_core::prelude::*;

fn main() {
    header(
        "Table 1 — benchmarks and kernel execution times",
        "Table 1",
        "standalone times match the paper's columns; tuned L equals the paper's amortizing factors",
    );
    let rows = experiments::table1(&GpuConfig::k40());
    emit_json("table1", &rows);
    println!(
        "{:<6} {:<10} {:>4} {:>12} {:>12} {:>13} {:>8} {:>8}",
        "bench", "suite", "LoC", "large (us)", "small (us)", "trivial (us)", "tuned L", "paper L"
    );
    for r in rows {
        println!(
            "{:<6} {:<10} {:>4} {:>12.1} {:>12.1} {:>13.1} {:>8} {:>8}",
            r.id.name(),
            r.suite,
            r.kernel_loc,
            r.large_us,
            r.small_us,
            r.trivial_us,
            r.tuned_amortize,
            r.paper_amortize
        );
    }
}
