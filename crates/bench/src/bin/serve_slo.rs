//! The serving-load sweep: goodput and p50/p99/p999 request latency
//! versus offered load for the reference four-tenant inference mix, under
//! HPF preemption with the watchdog escalation ladder armed.
//!
//! Each load point is one deterministic discrete-event run (one parallel
//! cell); results are byte-identical across `FLEP_THREADS`. The default
//! horizon is sized so the whole sweep simulates over a million requests
//! inside the runtime's default event budget.
//!
//! Knobs: `FLEP_SEED` (root seed, default 42); `FLEP_SERVE_HORIZON_MS`
//! (simulated milliseconds of arrivals per load point, default 2500);
//! `FLEP_SERVE_LOADS` (comma-separated load multipliers, default
//! `0.25,0.5,1,1.5,2,3`); `FLEP_REPEATS` (wall-clock samples for the
//! perf artifact); `FLEP_JSON` / `FLEP_BENCH_JSON` (artifacts).

use flep_bench::{emit_json, exp_config, header};
use flep_metrics::{percentile_ns, tail_triple_ns};
use flep_serve::{reference_tenants, sweep_offered_load, LoadPoint, ServeConfig};
use flep_sim_core::json::{JsonValue, ToJson};
use flep_sim_core::SimTime;
use std::time::Instant;

fn horizon() -> SimTime {
    let ms = std::env::var("FLEP_SERVE_HORIZON_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_500u64);
    SimTime::from_ms(ms)
}

fn loads() -> Vec<f64> {
    let raw = std::env::var("FLEP_SERVE_LOADS").unwrap_or_else(|_| "0.25,0.5,1,1.5,2,3".into());
    let parsed: Vec<f64> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&l| l > 0.0)
        .collect();
    if parsed.is_empty() {
        eprintln!("FLEP_SERVE_LOADS: no valid loads in {raw:?}; using defaults");
        vec![0.25, 0.5, 1.0, 1.5, 2.0, 3.0]
    } else {
        parsed
    }
}

fn main() {
    header(
        "serve_slo — goodput and tail latency vs offered load",
        "serving frontend over the FLEP runtime (paper §2 motivation, §5 policies)",
        "goodput tracks offered load until saturation then plateaus; tails grow; high-priority tenants keep their SLOs under overload",
    );
    let exp = exp_config();
    let horizon = horizon();
    let loads = loads();
    let base = ServeConfig::new(exp.seed, horizon, reference_tenants());

    // Deterministic results: repeats only sample wall-clock. One warmup
    // sweep, then `repeats` timed ones; the artifact records the median.
    let mut points: Vec<LoadPoint> = sweep_offered_load(&base, &loads);
    let mut wall_ns: Vec<u64> = Vec::new();
    for _ in 0..exp.repeats {
        let t0 = Instant::now();
        points = sweep_offered_load(&base, &loads);
        wall_ns.push(t0.elapsed().as_nanos() as u64);
    }
    wall_ns.sort_unstable();
    let median_wall = percentile_ns(&wall_ns, 50, 100);

    emit_json("serve_slo", &points);

    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "load", "offered", "goodput", "dropped", "p50", "p99", "p999", "events", "outcome"
    );
    let mut total_offered = 0u64;
    for p in &points {
        let r = &p.report;
        let dropped = r.offered() - r.goodput();
        let (p50, p99, p999) = tail_triple_ns(r.latency);
        total_offered += r.offered();
        println!(
            "{:>6.2} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12} {:>10} {:>9}",
            p.load,
            r.offered(),
            r.goodput(),
            dropped,
            SimTime::from_ns(p50).to_string(),
            SimTime::from_ns(p99).to_string(),
            SimTime::from_ns(p999).to_string(),
            r.events,
            r.outcome.name(),
        );
    }
    println!(
        "total: {} simulated requests across {} load points ({}ms horizon each), sweep wall median {:.2}s",
        total_offered,
        points.len(),
        horizon.as_ns() / 1_000_000,
        median_wall as f64 / 1e9,
    );

    if let Ok(path) = std::env::var("FLEP_BENCH_JSON") {
        let doc = JsonValue::object([
            ("suite", JsonValue::Str("flep serve slo".into())),
            ("samples", exp.repeats.to_json()),
            (
                "results",
                JsonValue::array(points.iter().map(|p| {
                    let (p50, p99, p999) = tail_triple_ns(p.report.latency);
                    // Perf-smoke artifact shape: simulated request
                    // latency stands in for the timing fields (median =
                    // p50, max = p999), as fault_recovery does.
                    JsonValue::object([
                        ("name", format!("serve_slo/load_{:.2}", p.load).to_json()),
                        ("median_ns", p50.to_json()),
                        ("min_ns", p50.to_json()),
                        ("max_ns", p999.to_json()),
                        ("p99_ns", p99.to_json()),
                        ("goodput", p.report.goodput().to_json()),
                        ("offered", p.report.offered().to_json()),
                    ])
                })),
            ),
            ("sweep_wall_ns", median_wall.to_json()),
        ]);
        match std::fs::write(&path, doc.render() + "\n") {
            Ok(()) => eprintln!("serve-slo artifact written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
