//! Measures watchdog recovery latency under injected preemption faults:
//! for each fault preset (stuck victim, wedged exit, lost doorbell, lost
//! notification, rejected launches), the high-priority kernel's simulated
//! arrival-to-completion latency vs. the fault-free baseline, plus the
//! escalation-ladder histogram that got it there.
//!
//! Knobs: `FLEP_FAULT_SEED` picks the fault-plan seed family (default
//! 42); `FLEP_BENCH_JSON` additionally records the per-preset latencies in
//! the perf-smoke artifact format (`BENCH_fault_recovery.json` in CI).

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;
use flep_sim_core::json::{JsonValue, ToJson};

fn fault_seed() -> u64 {
    std::env::var("FLEP_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

fn main() {
    header(
        "Fault recovery — escalation-ladder latency under injected faults",
        "robustness (paper §3.2/§6 risk analysis)",
        "every preset recovers; forced drains beat kills; latency within a few drain deadlines of baseline",
    );
    let exp = exp_config();
    let seed = fault_seed();
    let rows = experiments::fault_recovery(&GpuConfig::k40(), exp, seed);
    emit_json("fault_recovery", &rows);
    println!(
        "{:>18} {:>12} {:>12} {:>12} {:>12} {:>6} {:>14}",
        "preset", "median", "min", "max", "baseline", "recov", "esc [f/d/k]"
    );
    for r in &rows {
        println!(
            "{:>18} {:>12} {:>12} {:>12} {:>12} {:>6} {:>14}",
            r.preset,
            r.median.to_string(),
            r.min.to_string(),
            r.max.to_string(),
            r.baseline.to_string(),
            r.recoveries,
            format!(
                "{}/{}/{}",
                r.escalations[0], r.escalations[1], r.escalations[2]
            ),
        );
    }

    // Perf-smoke artifact: same shape as the micro-bench recorder, with
    // simulated recovery latencies in the `*_ns` fields.
    if let Ok(path) = std::env::var("FLEP_BENCH_JSON") {
        let doc = JsonValue::object([
            ("suite", JsonValue::Str("flep fault recovery".into())),
            ("samples", exp.repeats.to_json()),
            (
                "results",
                JsonValue::array(rows.iter().map(|r| {
                    JsonValue::object([
                        ("name", format!("fault_recovery/{}", r.preset).to_json()),
                        ("median_ns", r.median.as_ns().to_json()),
                        ("min_ns", r.min.as_ns().to_json()),
                        ("max_ns", r.max.as_ns().to_json()),
                    ])
                })),
            ),
        ]);
        match std::fs::write(&path, doc.render() + "\n") {
            Ok(()) => eprintln!("fault-recovery artifact written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
