//! Regenerates Fig. 10: ANTT improvement for equal-priority co-runs.

use flep_bench::{emit_json, exp_config, header};
use flep_core::prelude::*;
use flep_metrics::Summary;

fn main() {
    header(
        "Figure 10 — ANTT improvement, equal-priority two-kernel co-runs",
        "Fig. 10 (§6.3.1)",
        "avg ~8X improvement over MPS",
    );
    let rows = experiments::fig10_11_equal_priority(&GpuConfig::k40(), exp_config());
    emit_json("fig10_antt", &rows);
    println!("{:<12} {:>12}", "pair (S_L)", "ANTT imp.");
    for r in &rows {
        println!(
            "{:<12} {:>11.1}X",
            format!("{}_{}", r.short.name(), r.long.name()),
            r.antt_improvement
        );
    }
    let s = Summary::of(&rows.iter().map(|r| r.antt_improvement).collect::<Vec<_>>());
    println!(
        "\nmean {:.1}X   max {:.1}X   (paper: 8X avg)",
        s.mean, s.max
    );
}
