//! The cluster scale-out sweep: fixed per-device workload, growing device
//! count — the partitioned event scheduler's headline bench. With one
//! global queue, per-device cost grows with cluster size (every watchdog
//! tick of every device churns one ever-deeper heap); with per-device
//! streams it should stay near-flat, so d=1024 lands within ~1.3× the
//! d=8 per-device wall-clock.
//!
//! Each device count runs `FLEP_SCALE_JOBS` jobs per device, arriving in
//! cluster-wide same-timestamp waves (wave `w` drops one job per device
//! at `w × 250µs`) — the worst case for the epoch driver, since every
//! wave is a cross-device barrier. The watchdog is armed so every device
//! carries a poll-tick stream for its whole busy span.
//!
//! Simulated results (makespan, completion ledger) are deterministic and
//! independent of `FLEP_THREADS`; repeats only sample wall-clock.
//!
//! Knobs: `FLEP_SCALE_DEVICES` (comma-separated device counts, default
//! `8,64,256,1024`); `FLEP_SCALE_JOBS` (jobs per device, default `4`);
//! `FLEP_SEED`; `FLEP_REPEATS`; `FLEP_JSON` / `FLEP_BENCH_JSON`
//! (artifacts).

use flep_bench::{emit_json, exp_config, header};
use flep_core::runner::cell_seed;
use flep_gpu_sim::GpuConfig;
use flep_metrics::percentile_ns;
use flep_runtime::{
    ClusterConfig, ClusterResult, ClusterRun, JobSpec, KernelProfile, Policy, WatchdogConfig,
};
use flep_sim_core::json::{JsonValue, ToJson};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, BenchmarkId, InputClass};
use std::time::Instant;

/// The benchmark mix cycled across the cluster (same classes as the
/// failover sweep).
const MIX: [BenchmarkId; 8] = [
    BenchmarkId::Va,
    BenchmarkId::Spmv,
    BenchmarkId::Pf,
    BenchmarkId::Nn,
    BenchmarkId::Mm,
    BenchmarkId::Pl,
    BenchmarkId::Md,
    BenchmarkId::Cfd,
];

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("{name}: invalid value {v:?}; using {default}");
                default
            }),
        Err(_) => default,
    }
}

fn device_counts() -> Vec<u32> {
    let raw = std::env::var("FLEP_SCALE_DEVICES").unwrap_or_else(|_| "8,64,256,1024".into());
    let parsed: Vec<u32> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&v| v >= 1)
        .collect();
    if parsed.is_empty() {
        eprintln!("FLEP_SCALE_DEVICES: no valid values in {raw:?}; using 8,64,256,1024");
        vec![8, 64, 256, 1024]
    } else {
        parsed
    }
}

/// One scale point: `devices` GPUs, `jobs_per_device` waves of one job
/// per device, watchdog armed, faults off (so the epoch driver engages).
fn run_point(devices: u32, jobs_per_device: u64, seed: u64) -> ClusterResult {
    let mut cfg = ClusterConfig::new(devices, GpuConfig::k40(), Policy::hpf());
    cfg.watchdog = Some(WatchdogConfig::default());
    let mut run = ClusterRun::new(cfg);
    let mut job = 0u64;
    for wave in 0..jobs_per_device {
        for d in 0..u64::from(devices) {
            let id = MIX[(job % MIX.len() as u64) as usize];
            run = run.job(
                JobSpec::new(
                    KernelProfile::of(&Benchmark::get(id), InputClass::Small),
                    SimTime::from_us(250 * wave),
                )
                .with_priority(1 + (d % 3) as u32)
                .with_seed(cell_seed(seed, job as usize, 0)),
            );
            job += 1;
        }
    }
    run.run()
}

struct Row {
    devices: u32,
    jobs: u64,
    completed: u64,
    failed: u64,
    stranded: u64,
    makespan: SimTime,
    /// Median wall-clock, ns (kept out of the `FLEP_JSON` rows so those
    /// stay byte-identical across machines and thread counts).
    wall_ns: u64,
}

impl Row {
    fn per_device_wall_ns(&self) -> f64 {
        self.wall_ns as f64 / f64::from(self.devices)
    }
}

impl ToJson for Row {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("devices", u64::from(self.devices).to_json()),
            ("jobs", self.jobs.to_json()),
            ("completed", self.completed.to_json()),
            ("failed", self.failed.to_json()),
            ("stranded", self.stranded.to_json()),
            ("makespan_ns", self.makespan.as_ns().to_json()),
        ])
    }
}

fn main() {
    header(
        "cluster_scale — partitioned per-device event scheduling",
        "near-linear cluster scale-out over per-device event streams (DESIGN.md §13)",
        "per-device wall-clock at the largest device count stays within ~1.3x of the smallest; simulated makespan per point is deterministic",
    );
    let exp = exp_config();
    let devices = device_counts();
    let jobs_per_device = env_u64("FLEP_SCALE_JOBS", 4);

    let mut rows: Vec<Row> = Vec::new();
    for &d in &devices {
        // Warmup, then timed repeats; the simulated result must be
        // bit-identical on every run.
        let reference = run_point(d, jobs_per_device, exp.seed);
        let mut wall: Vec<u64> = Vec::new();
        for _ in 0..exp.repeats {
            let t0 = Instant::now();
            let result = run_point(d, jobs_per_device, exp.seed);
            wall.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(
                result.end_time, reference.end_time,
                "devices {d}: nondeterministic makespan"
            );
        }
        assert!(
            reference.reconciles(),
            "devices {d}: lost or double-ran a job"
        );
        wall.sort_unstable();
        rows.push(Row {
            devices: d,
            jobs: jobs_per_device * u64::from(d),
            completed: reference.completed,
            failed: reference.failed,
            stranded: reference.stranded,
            makespan: reference.end_time,
            wall_ns: percentile_ns(&wall, 50, 100),
        });
    }

    emit_json("cluster_scale", &rows);

    println!(
        "{:>7} {:>6} {:>9} {:>12} {:>10} {:>14} {:>6}",
        "devices", "jobs", "completed", "makespan", "wall_ms", "per_dev_wall", "ratio"
    );
    let base = rows.first().map(Row::per_device_wall_ns).unwrap_or(1.0);
    for r in &rows {
        println!(
            "{:>7} {:>6} {:>9} {:>12} {:>10.1} {:>12.0}us {:>6.2}",
            r.devices,
            r.jobs,
            r.completed,
            r.makespan.to_string(),
            r.wall_ns as f64 / 1e6,
            r.per_device_wall_ns() / 1e3,
            r.per_device_wall_ns() / base,
        );
    }

    // Perf-gate artifact. `makespan_*` rows are deterministic simulated
    // time (any drift is a correctness bug, not noise); the permille
    // ratio row is the scale-out headline (per-device wall at the
    // largest point over the smallest); `wall_*` rows are wall-clock
    // context with no baseline entry, so the gate skips them.
    if let Ok(path) = std::env::var("FLEP_BENCH_JSON") {
        let mut results: Vec<JsonValue> = rows
            .iter()
            .map(|r| {
                JsonValue::object([
                    (
                        "name",
                        format!("cluster_scale/makespan_d{}", r.devices).to_json(),
                    ),
                    ("median_ns", r.makespan.as_ns().to_json()),
                    ("min_ns", r.makespan.as_ns().to_json()),
                    ("max_ns", r.makespan.as_ns().to_json()),
                    ("completed", r.completed.to_json()),
                ])
            })
            .collect();
        results.extend(rows.iter().map(|r| {
            JsonValue::object([
                (
                    "name",
                    format!("cluster_scale/wall_d{}", r.devices).to_json(),
                ),
                ("median_ns", r.wall_ns.to_json()),
                ("min_ns", r.wall_ns.to_json()),
                ("max_ns", r.wall_ns.to_json()),
            ])
        }));
        if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
            let ratio_permille =
                (last.per_device_wall_ns() / first.per_device_wall_ns() * 1000.0).round() as u64;
            results.push(JsonValue::object([
                ("name", "cluster_scale/per_device_ratio_permille".to_json()),
                ("median_ns", ratio_permille.to_json()),
                ("min_ns", ratio_permille.to_json()),
                ("max_ns", ratio_permille.to_json()),
            ]));
        }
        let doc = JsonValue::object([
            ("suite", JsonValue::Str("flep cluster scale-out".into())),
            ("samples", exp.repeats.to_json()),
            ("results", JsonValue::array(results)),
        ]);
        match std::fs::write(&path, doc.render() + "\n") {
            Ok(()) => eprintln!("cluster-scale artifact written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
