//! Regenerates Fig. 13: average GPU share for high- and low-priority
//! kernels under FFS with 2:1 weights.

use flep_bench::{emit_json, exp_config, header, mean_std};
use flep_core::prelude::*;

fn main() {
    header(
        "Figure 13 — GPU shares under FFS (weights 2:1)",
        "Fig. 13 (§6.3.3)",
        "~2/3 for the high-weight kernel, ~1/3 for the low-weight one, narrow error bars",
    );
    let out = experiments::fig13_14_ffs(&GpuConfig::k40(), exp_config());
    emit_json("fig13_ffs_share", &out);
    println!(
        "{:>10} {:>16} {:>16}",
        "window end", "high share", "low share"
    );
    for p in &out.share_curve {
        println!(
            "{:>10} {:>16} {:>16}",
            p.at.to_string(),
            mean_std(p.hi_mean * 100.0, p.hi_std * 100.0),
            mean_std(p.lo_mean * 100.0, p.lo_std * 100.0)
        );
    }
    println!("\ntarget: 66.7% / 33.3%");
}
