//! The chaos sweep: correlated-outage rate × failure topology, each cell
//! one deterministic multi-device co-run with the full health-aware
//! control plane engaged — zone outages and rack power-cycles from the
//! dedicated correlated-fault stream, per-device health scoring with the
//! circuit breaker, and tenant anti-affinity / spread placement. Reports
//! the completion ledger (completed / failed / stranded), migrations,
//! correlated events fired, breaker activity (quarantines / probes /
//! readmissions), and simulated makespan per cell.
//!
//! Every cell is an independent `runner::run_cells` unit seeded by
//! `cell_seed`, so the table and JSON rows are byte-identical at any
//! `FLEP_THREADS`.
//!
//! Knobs: `FLEP_CHAOS_TOPOS` (comma-separated `ZxRxD` topologies, default
//! `1x1x8,2x2x2,4x2x1` — all eight-device fleets, sliced into different
//! blast radii); `FLEP_CHAOS_RATES` (comma-separated correlated events
//! per simulated second, default `0,400,1600`; a third are zone outages,
//! two thirds rack power-cycles); `FLEP_SEED`; `FLEP_REPEATS` (wall-clock
//! samples); `FLEP_JSON` / `FLEP_BENCH_JSON` (artifacts).

use flep_bench::{
    emit_json, env_chaos, exp_config, header, parse_chaos_rates, parse_chaos_topos,
    CHAOS_RATES_DEFAULT, CHAOS_TOPOS_DEFAULT,
};
use flep_core::runner::{cell_seed, run_cells};
use flep_gpu_sim::{CorrelatedFaultConfig, FailureTopology, GpuConfig};
use flep_metrics::{percentile_ns, RecoverySummary};
use flep_runtime::{
    ClusterConfig, ClusterResult, ClusterRun, DeviceEventKind, HealthConfig, JobSpec,
    KernelProfile, PlacementConfig, Policy,
};
use flep_sim_core::json::{JsonValue, ToJson};
use flep_sim_core::SimTime;
use flep_workloads::{Benchmark, BenchmarkId, InputClass};
use std::time::Instant;

/// The eight-job mix every cell runs: one of each benchmark class,
/// arrivals staggered 250µs apart, priorities cycling over three levels,
/// tenants cycling over four (so anti-affinity and spread have something
/// to separate).
const MIX: [BenchmarkId; 8] = [
    BenchmarkId::Va,
    BenchmarkId::Spmv,
    BenchmarkId::Pf,
    BenchmarkId::Nn,
    BenchmarkId::Mm,
    BenchmarkId::Pl,
    BenchmarkId::Md,
    BenchmarkId::Cfd,
];

/// One sweep cell: the fleet shaped by `topo`, correlated outages at
/// `rate` events/s (one third zone outages, two thirds rack cycles),
/// breaker and placement constraints on.
fn run_cell(topo: FailureTopology, rate: f64, seed: u64) -> ClusterResult {
    let mut cfg = ClusterConfig::new(topo.devices(), GpuConfig::k40(), Policy::hpf());
    cfg.topology = Some(topo);
    cfg.health = Some(HealthConfig::default());
    cfg.placement = PlacementConfig {
        anti_affinity: true,
        spread: true,
    };
    if rate > 0.0 {
        cfg.correlated_faults = Some(
            CorrelatedFaultConfig::quiet(seed)
                .with_zone_outages(rate / 3.0, SimTime::from_ms(1))
                .with_rack_cycles(
                    2.0 * rate / 3.0,
                    SimTime::from_us(500),
                    SimTime::from_us(100),
                ),
        );
        cfg.max_migrations = 16;
    }
    let mut run = ClusterRun::new(cfg);
    for (i, id) in MIX.into_iter().enumerate() {
        run = run.job(
            JobSpec::new(
                KernelProfile::of(&Benchmark::get(id), InputClass::Small),
                SimTime::from_us(250 * i as u64),
            )
            .with_priority(1 + (i as u32 % 3))
            .with_tenant(i as u32 % 4)
            .with_seed(seed ^ i as u64),
        );
    }
    run.run()
}

struct Row {
    topo: FailureTopology,
    rate: f64,
    completed: u64,
    failed: u64,
    stranded: u64,
    correlated: usize,
    summary: RecoverySummary,
    makespan: SimTime,
}

impl ToJson for Row {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("topology", self.topo.to_string().to_json()),
            ("chaos_rate_per_s", self.rate.to_json()),
            ("completed", self.completed.to_json()),
            ("failed", self.failed.to_json()),
            ("stranded", self.stranded.to_json()),
            ("correlated_faults", (self.correlated as u64).to_json()),
            ("recovery_summary", self.summary.to_json()),
            ("makespan_ns", self.makespan.as_ns().to_json()),
        ])
    }
}

fn sweep(seed: u64, topos: &[FailureTopology], rates: &[f64]) -> Vec<Row> {
    let cells: Vec<(FailureTopology, f64)> = topos
        .iter()
        .flat_map(|&t| rates.iter().map(move |&r| (t, r)))
        .collect();
    run_cells(cells.len(), |i| {
        let (t, r) = cells[i];
        let result = run_cell(t, r, cell_seed(seed, i, 0));
        assert!(
            result.reconciles(),
            "cell {i} (topo {t}, rate {r}) lost or double-ran a job"
        );
        Row {
            topo: t,
            rate: r,
            completed: result.completed,
            failed: result.failed,
            stranded: result.stranded,
            correlated: result
                .device_events
                .iter()
                .filter(|e| matches!(e.kind, DeviceEventKind::CorrelatedFault(_)))
                .count(),
            summary: result.summary,
            makespan: result.end_time,
        }
    })
}

fn main() {
    header(
        "chaos_sweep — correlated outages under the health-aware control plane",
        "failure domains + circuit breakers over the FLEP runtime (robustness; paper §3.2/§6 risk analysis)",
        "chaos-off rows complete everything with no breaker activity; under chaos every job is still accounted exactly once, finer-grained topologies shrink the blast radius, and flapping domains trip the breaker",
    );
    let exp = exp_config();
    let topos = env_chaos("FLEP_CHAOS_TOPOS", CHAOS_TOPOS_DEFAULT, parse_chaos_topos);
    let rates = env_chaos("FLEP_CHAOS_RATES", CHAOS_RATES_DEFAULT, parse_chaos_rates);

    // Deterministic results: repeats only sample wall-clock. One warmup
    // sweep, then `repeats` timed ones; the artifact records the median.
    let mut rows = sweep(exp.seed, &topos, &rates);
    let mut wall_ns: Vec<u64> = Vec::new();
    for _ in 0..exp.repeats {
        let t0 = Instant::now();
        rows = sweep(exp.seed, &topos, &rates);
        wall_ns.push(t0.elapsed().as_nanos() as u64);
    }
    wall_ns.sort_unstable();
    let median_wall = percentile_ns(&wall_ns, 50, 100);

    emit_json("chaos_sweep", &rows);

    println!(
        "{:>8} {:>8} {:>9} {:>6} {:>8} {:>10} {:>10} {:>11} {:>6} {:>12}",
        "topology",
        "chaos/s",
        "completed",
        "failed",
        "stranded",
        "correlated",
        "migrations",
        "quarantines",
        "probes",
        "makespan"
    );
    for r in &rows {
        println!(
            "{:>8} {:>8.1} {:>9} {:>6} {:>8} {:>10} {:>10} {:>11} {:>6} {:>12}",
            r.topo.to_string(),
            r.rate,
            r.completed,
            r.failed,
            r.stranded,
            r.correlated,
            r.summary.migrations,
            r.summary.quarantines,
            r.summary.probes,
            r.makespan.to_string(),
        );
    }
    println!(
        "total: {} cells ({} topologies x {} chaos rates, {} jobs each), sweep wall median {:.2}s",
        rows.len(),
        topos.len(),
        rates.len(),
        MIX.len(),
        median_wall as f64 / 1e9,
    );

    // Perf-smoke artifact: same shape as the micro-bench recorder, with
    // the deterministic simulated makespan in the `*_ns` fields.
    if let Ok(path) = std::env::var("FLEP_BENCH_JSON") {
        let doc = JsonValue::object([
            ("suite", JsonValue::Str("flep chaos".into())),
            ("samples", exp.repeats.to_json()),
            (
                "results",
                JsonValue::array(rows.iter().map(|r| {
                    JsonValue::object([
                        (
                            "name",
                            format!("chaos/t{}_r{:.1}", r.topo, r.rate).to_json(),
                        ),
                        ("median_ns", r.makespan.as_ns().to_json()),
                        ("min_ns", r.makespan.as_ns().to_json()),
                        ("max_ns", r.makespan.as_ns().to_json()),
                        ("migrations", r.summary.migrations.to_json()),
                        ("quarantines", r.summary.quarantines.to_json()),
                        ("completed", r.completed.to_json()),
                    ])
                })),
            ),
            ("sweep_wall_ns", median_wall.to_json()),
        ]);
        match std::fs::write(&path, doc.render() + "\n") {
            Ok(()) => eprintln!("chaos artifact written to {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}
