//! Criterion micro-benchmarks for the hot paths of the FLEP reproduction:
//! the event engine, the device dispatcher, the persistent-batch engine,
//! the transform passes, model training, and whole co-runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use flep_core::prelude::*;
use flep_sim_core::{EventQueue, Scheduler, Simulation, World};

/// Raw event-queue throughput: push/pop of timestamped events.
fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim_core/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_ns(i * 37 % 5000), i);
            }
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc = acc.wrapping_add(e.payload);
            }
            acc
        })
    });
}

/// Engine dispatch throughput with a self-rescheduling world.
fn bench_engine(c: &mut Criterion) {
    struct Ticker {
        remaining: u32,
    }
    impl World for Ticker {
        type Event = ();
        fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(SimTime::from_ns(10), ());
            }
        }
    }
    c.bench_function("sim_core/engine_100k_chained_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Ticker { remaining: 100_000 });
            sim.schedule_at(SimTime::ZERO, ());
            sim.run();
            sim.dispatched()
        })
    });
}

/// A standalone original-kernel run through the full device model.
fn bench_device_original(c: &mut Criterion) {
    let bench = Benchmark::get(BenchmarkId::Spmv);
    c.bench_function("gpu_sim/spmv_large_standalone_original", |b| {
        b.iter(|| {
            flep_gpu_sim::run_single(GpuConfig::k40(), bench.original_desc(InputClass::Large))
        })
    });
}

/// A standalone persistent-kernel run (the FLEP form).
fn bench_device_persistent(c: &mut Criterion) {
    let bench = Benchmark::get(BenchmarkId::Spmv);
    c.bench_function("gpu_sim/spmv_large_standalone_persistent", |b| {
        b.iter(|| {
            flep_gpu_sim::run_single(
                GpuConfig::k40(),
                bench.persistent_desc(InputClass::Large, bench.table1_amortize),
            )
        })
    });
}

/// The compilation engine end to end on the largest kernel.
fn bench_transform(c: &mut Criterion) {
    let src = flep_workloads::source(BenchmarkId::Cfd);
    c.bench_function("compile/cfd_parse_analyze_transform", |b| {
        b.iter(|| {
            let program = parse(src).unwrap();
            analyze(&program).unwrap();
            transform(&program, TransformMode::Spatial).unwrap()
        })
    });
}

/// Ridge model training (8 kernels x 100 samples).
fn bench_model_training(c: &mut Criterion) {
    c.bench_function("perfmodel/train_all_models", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            ModelStore::train(seed)
        })
    });
}

/// A full HPF priority co-run (the Fig. 8 unit of work).
fn bench_hpf_corun(c: &mut Criterion) {
    let lo = KernelProfile::of(&Benchmark::get(BenchmarkId::Pf), InputClass::Large);
    let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Mm), InputClass::Small);
    c.bench_function("runtime/hpf_priority_corun_pf_mm", |b| {
        b.iter_batched(
            || (lo.clone(), hi.clone()),
            |(lo, hi)| {
                CoRun::new(GpuConfig::k40(), Policy::hpf())
                    .job(JobSpec::new(lo, SimTime::ZERO).with_priority(1))
                    .job(JobSpec::new(hi, SimTime::from_us(10)).with_priority(2))
                    .run()
            },
            BatchSize::SmallInput,
        )
    });
}

/// The offline tuner for one benchmark (several profiling runs).
fn bench_tuner(c: &mut Criterion) {
    let bench = Benchmark::get(BenchmarkId::Mm);
    c.bench_function("compile/tune_amortizing_factor_mm", |b| {
        b.iter(|| tune(&GpuConfig::k40(), &bench))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_engine,
    bench_device_original,
    bench_device_persistent,
    bench_transform,
    bench_model_training,
    bench_hpf_corun,
    bench_tuner,
);
criterion_main!(benches);
