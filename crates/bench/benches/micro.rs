//! Micro-benchmarks for the hot paths of the FLEP reproduction: the event
//! engine, the device dispatcher, the persistent-batch engine, the
//! transform passes, model training, and whole co-runs.
//!
//! Runs on a small in-tree harness (no external benchmarking crate): each
//! target is warmed up, then timed for a fixed number of samples, and the
//! median / min / max per-iteration times are reported. Medians are robust
//! to scheduler noise, which is all a simulation codebase needs to spot
//! order-of-magnitude regressions.
//!
//! Environment knobs: `FLEP_BENCH_SAMPLES` (default 15) and
//! `FLEP_BENCH_WARMUP` (default 3) control sample counts; a single
//! command-line argument filters targets by substring, matching the
//! `cargo bench <filter>` convention. Set `FLEP_BENCH_JSON=<path>` to
//! also write the timings of every target that ran as a JSON artifact
//! (used by the `ci.sh` perf-smoke stage).

use std::hint::black_box;
use std::time::{Duration, Instant};

use flep_core::prelude::*;
use flep_sim_core::json::JsonValue;
use flep_sim_core::{EventQueue, Scheduler, SimRng, Simulation, World};

/// Number of timed samples per target.
fn samples() -> u32 {
    std::env::var("FLEP_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15)
}

/// Number of untimed warmup iterations per target.
fn warmup() -> u32 {
    std::env::var("FLEP_BENCH_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// One target's timings, kept for the `FLEP_BENCH_JSON` artifact.
struct BenchRecord {
    name: String,
    median: Duration,
    min: Duration,
    max: Duration,
}

/// Warms up, then times `f` for the configured number of samples, prints
/// `name  median (min … max)`, and records the timings in `results`.
fn bench<R>(
    results: &mut Vec<BenchRecord>,
    filter: Option<&str>,
    name: &str,
    mut f: impl FnMut() -> R,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    for _ in 0..warmup() {
        black_box(f());
    }
    let mut times: Vec<Duration> = (0..samples())
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    let median = times[times.len() / 2];
    println!(
        "{name:<44} {:>12}  ({} … {})",
        format_duration(median),
        format_duration(times[0]),
        format_duration(times[times.len() - 1]),
    );
    results.push(BenchRecord {
        name: name.to_string(),
        median,
        min: times[0],
        max: times[times.len() - 1],
    });
}

/// Writes the collected timings to `FLEP_BENCH_JSON` (if set) as a
/// self-describing document: target name plus median/min/max in
/// nanoseconds.
fn write_json_artifact(results: &[BenchRecord]) {
    let Ok(path) = std::env::var("FLEP_BENCH_JSON") else {
        return;
    };
    let doc = JsonValue::object([
        ("suite", JsonValue::Str("flep-bench micro".into())),
        ("samples", JsonValue::UInt(u64::from(samples()))),
        (
            "results",
            JsonValue::array(results.iter().map(|r| {
                JsonValue::object([
                    ("name", JsonValue::Str(r.name.clone())),
                    ("median_ns", JsonValue::UInt(r.median.as_nanos() as u64)),
                    ("min_ns", JsonValue::UInt(r.min.as_nanos() as u64)),
                    ("max_ns", JsonValue::UInt(r.max.as_nanos() as u64)),
                ])
            })),
        ),
    ]);
    match std::fs::write(&path, doc.render() + "\n") {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("FLEP_BENCH_JSON: cannot write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `cargo bench -- <filter>`; ignore harness flags like `--bench`.
    let filter = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .map(String::as_str);
    println!(
        "{:<44} {:>12}  (min … max over {} samples)",
        "target",
        "median",
        samples()
    );
    let mut results: Vec<BenchRecord> = Vec::new();

    // Raw event-queue throughput: push/pop of timestamped events.
    bench(
        &mut results,
        filter,
        "sim_core/event_queue_push_pop_10k",
        || {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_ns(i * 37 % 5000), i);
            }
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc = acc.wrapping_add(e.payload);
            }
            acc
        },
    );

    // Steady-state churn with fat (64-byte) payloads: keep ~32k events
    // pending while popping one and pushing two/zero in alternation, the
    // access pattern a co-run produces scaled up to a stress depth.
    // Paired with an inline reference implementation — the
    // `BinaryHeap<(time, seq, payload)>` the indexed queue replaced — so
    // a single run measures the speedup from keeping payloads out of the
    // sift path.
    type FatPayload = [u64; 8];
    const CHURN_PREFILL: usize = 32_768;
    const CHURN_STEPS: usize = 20_000;
    // Deterministic pseudo-random timestamps, precomputed so the timed
    // region measures queue operations rather than the generator.
    let churn_times: Vec<SimTime> = (0..(CHURN_PREFILL + CHURN_STEPS) as u64)
        .map(|i| {
            SimTime::from_ns(i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1) % 100_000)
        })
        .collect();
    bench(&mut results, filter, "sim_core/event_queue_churn", || {
        let mut q: EventQueue<FatPayload> = EventQueue::new();
        let mut n = 0usize;
        for _ in 0..CHURN_PREFILL {
            q.push(churn_times[n], [n as u64; 8]);
            n += 1;
        }
        let mut acc = 0u64;
        for step in 0..CHURN_STEPS {
            let e = q.pop().expect("queue stays non-empty");
            acc = acc.wrapping_add(e.payload[0]);
            for _ in 0..(step % 2) * 2 {
                q.push(churn_times[n], [n as u64; 8]);
                n += 1;
            }
        }
        q.clear();
        acc
    });
    bench(
        &mut results,
        filter,
        "sim_core/event_queue_churn_binheap_ref",
        || {
            use std::cmp::Reverse;
            use std::collections::BinaryHeap;
            let mut q: BinaryHeap<Reverse<(SimTime, u64, FatPayload)>> = BinaryHeap::new();
            let mut n = 0usize;
            for _ in 0..CHURN_PREFILL {
                q.push(Reverse((churn_times[n], n as u64, [n as u64; 8])));
                n += 1;
            }
            let mut acc = 0u64;
            for step in 0..CHURN_STEPS {
                let Reverse((_, _, payload)) = q.pop().expect("queue stays non-empty");
                acc = acc.wrapping_add(payload[0]);
                for _ in 0..(step % 2) * 2 {
                    q.push(Reverse((churn_times[n], n as u64, [n as u64; 8])));
                    n += 1;
                }
            }
            q.clear();
            acc
        },
    );

    // The bit-identity-frozen noise stream in isolation: co-run worlds
    // draw a Box-Muller `noise_factor` per simulated kernel segment, and
    // that draw sequence is pinned by every golden, so it can never be
    // swapped for a cheaper generator. Profiling the sim_corun macros
    // showed these draws account for roughly half their median (~5.4ms of
    // the 10.9ms hpf run); this target times 1M draws of the exact frozen
    // sequence so future perf claims can cite machinery-only time by
    // subtracting it out.
    bench(
        &mut results,
        filter,
        "sim_core/noise_stream_boxmuller_1m",
        || {
            let mut rng = SimRng::seed_from(11);
            let mut acc = 0.0f64;
            for _ in 0..1_000_000u32 {
                acc += rng.noise_factor(0.3);
            }
            acc
        },
    );

    // Steady-state *periodic* churn: the access pattern a discrete-event
    // simulation actually produces — pop the minimum, reschedule a fixed
    // period (plus deterministic jitter) ahead. This is the regime the
    // ladder backend targets: near-sorted inserts land in O(1) buckets
    // where a heap pays log(depth) sifts on every operation. Run against
    // both backends explicitly ("queue_ablation" targets) so one bench
    // invocation quantifies the ladder-vs-heap gap; CI records the pair
    // as BENCH_queue_ablation.json.
    const PERIODIC_DEPTH: usize = 4_096;
    const PERIODIC_STEPS: usize = 100_000;
    let periodic_jitter: Vec<u64> = (0..(PERIODIC_DEPTH + PERIODIC_STEPS) as u64)
        .map(|i| i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1) % 2_000)
        .collect();
    let run_periodic = |mut q: EventQueue<u64>| {
        let mut n = 0usize;
        for _ in 0..PERIODIC_DEPTH {
            q.push(SimTime::from_ns(9_000 + periodic_jitter[n]), n as u64);
            n += 1;
        }
        let mut acc = 0u64;
        for _ in 0..PERIODIC_STEPS {
            let e = q.pop().expect("queue stays non-empty");
            acc = acc.wrapping_add(e.payload);
            q.push(
                e.time + SimTime::from_ns(10_000 + periodic_jitter[n]),
                e.payload,
            );
            n += 1;
        }
        q.clear();
        acc
    };
    bench(
        &mut results,
        filter,
        "sim_core/event_queue_churn_periodic",
        || run_periodic(EventQueue::new()),
    );
    bench(
        &mut results,
        filter,
        "sim_core/queue_ablation_heap_periodic",
        || run_periodic(EventQueue::new_heap()),
    );
    bench(
        &mut results,
        filter,
        "sim_core/queue_ablation_ladder_periodic",
        || run_periodic(EventQueue::new_ladder()),
    );

    // Engine dispatch throughput with a self-rescheduling world.
    struct Ticker {
        remaining: u32,
    }
    impl World for Ticker {
        type Event = ();
        fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<'_, ()>) {
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(SimTime::from_ns(10), ());
            }
        }
    }
    bench(
        &mut results,
        filter,
        "sim_core/engine_100k_chained_events",
        || {
            let mut sim = Simulation::new(Ticker { remaining: 100_000 });
            sim.schedule_at(SimTime::ZERO, ());
            sim.run();
            sim.dispatched()
        },
    );

    // A standalone original-kernel run through the full device model.
    let spmv = Benchmark::get(BenchmarkId::Spmv);
    bench(
        &mut results,
        filter,
        "gpu_sim/spmv_large_standalone_original",
        || flep_gpu_sim::run_single(GpuConfig::k40(), spmv.original_desc(InputClass::Large)),
    );

    // A standalone persistent-kernel run (the FLEP form).
    bench(
        &mut results,
        filter,
        "gpu_sim/spmv_large_standalone_persistent",
        || {
            flep_gpu_sim::run_single(
                GpuConfig::k40(),
                spmv.persistent_desc(InputClass::Large, spmv.table1_amortize),
            )
        },
    );

    // The compilation engine end to end on the largest kernel.
    let src = flep_workloads::source(BenchmarkId::Cfd);
    bench(
        &mut results,
        filter,
        "compile/cfd_parse_analyze_transform",
        || {
            let program = parse(src).unwrap();
            analyze(&program).unwrap();
            transform(&program, TransformMode::Spatial).unwrap()
        },
    );

    // Ridge model training (8 kernels x 100 samples).
    let mut seed = 0u64;
    bench(&mut results, filter, "perfmodel/train_all_models", || {
        seed += 1;
        ModelStore::train(seed)
    });

    // A full HPF priority co-run (the Fig. 8 unit of work).
    let lo = KernelProfile::of(&Benchmark::get(BenchmarkId::Pf), InputClass::Large);
    let hi = KernelProfile::of(&Benchmark::get(BenchmarkId::Mm), InputClass::Small);
    bench(
        &mut results,
        filter,
        "runtime/hpf_priority_corun_pf_mm",
        || {
            CoRun::new(GpuConfig::k40(), Policy::hpf())
                .job(JobSpec::new(lo.clone(), SimTime::ZERO).with_priority(1))
                .job(JobSpec::new(hi.clone(), SimTime::from_us(10)).with_priority(2))
                .run()
        },
    );

    // The offline tuner for one benchmark (several profiling runs).
    let mm = Benchmark::get(BenchmarkId::Mm);
    bench(
        &mut results,
        filter,
        "compile/tune_amortizing_factor_mm",
        || tune(&GpuConfig::k40(), &mm),
    );

    // Full co-run macro-benchmarks ("sim_corun"): once the event queue is
    // cheap, the world-side hot path — grid-table lookups, contention
    // accounting, SM placement — dominates these. CI records them as
    // BENCH_sim_corun.json so the perf trajectory has a world-side
    // datapoint alongside event_queue_churn.
    let victim = KernelProfile::of(&Benchmark::get(BenchmarkId::Spmv), InputClass::Large);
    let burst = KernelProfile::of(&Benchmark::get(BenchmarkId::Mm), InputClass::Small);
    bench(
        &mut results,
        filter,
        "runtime/sim_corun_hpf_spatial_bursts",
        || {
            // A noisy looping victim under periodic high-priority bursts:
            // every burst triggers a spatial preemption and a later
            // restore, exercising signal flips, batch claims, and CTA
            // placement at full device occupancy.
            let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf_spatial())
                .job(
                    JobSpec::new(victim.clone(), SimTime::ZERO)
                        .with_priority(1)
                        .with_seed(11)
                        .looping(),
                )
                .horizon(SimTime::from_ms(25));
            for k in 0..6u64 {
                corun = corun.job(
                    JobSpec::new(burst.clone(), SimTime::from_ms(3) + SimTime::from_ms(4) * k)
                        .with_priority(2)
                        .with_seed(100 + k),
                );
            }
            corun.run()
        },
    );
    bench(
        &mut results,
        filter,
        "runtime/sim_corun_ffs_2to1_share",
        || {
            // One Fig. 13 cell at a reduced horizon: two looping persistent
            // kernels time-sliced 2:1 by FFS — the epoch churn maximizes
            // preempt/drain/relaunch traffic through the device model.
            CoRun::new(GpuConfig::k40(), Policy::Ffs { max_overhead: 0.10 })
                .job(
                    JobSpec::new(burst.clone(), SimTime::ZERO)
                        .with_priority(2)
                        .with_seed(5)
                        .looping(),
                )
                .job(
                    JobSpec::new(victim.clone(), SimTime::from_us(5))
                        .with_priority(1)
                        .with_seed(6)
                        .looping(),
                )
                .horizon(SimTime::from_ms(30))
                .run()
        },
    );

    write_json_artifact(&results);
}
