//! Property-based tests for metric invariants.

use proptest::prelude::*;

use flep_metrics::{antt, stp, weighted_fairness, FairnessEntry, Summary, Turnaround};
use flep_sim_core::SimTime;

proptest! {
    /// STP of n kernels never exceeds n and is positive when all
    /// turnarounds are sensible (multi >= single > 0).
    #[test]
    fn stp_bounded_by_job_count(
        pairs in prop::collection::vec((1u64..100_000, 0u64..100_000), 1..10)
    ) {
        let ts: Vec<Turnaround> = pairs
            .iter()
            .map(|&(single, extra)| Turnaround {
                single: SimTime::from_us(single),
                multi: SimTime::from_us(single + extra),
            })
            .collect();
        let v = stp(&ts);
        prop_assert!(v > 0.0);
        prop_assert!(v <= ts.len() as f64 + 1e-9, "STP {v} > n {}", ts.len());
    }

    /// ANTT is at least 1 when no kernel runs faster co-scheduled than
    /// alone, and exactly 1 when nothing slows down.
    #[test]
    fn antt_at_least_one_without_speedups(
        pairs in prop::collection::vec((1u64..100_000, 0u64..100_000), 1..10)
    ) {
        let ts: Vec<Turnaround> = pairs
            .iter()
            .map(|&(single, extra)| Turnaround {
                single: SimTime::from_us(single),
                multi: SimTime::from_us(single + extra),
            })
            .collect();
        prop_assert!(antt(&ts) >= 1.0 - 1e-9);
        let ideal: Vec<Turnaround> = pairs
            .iter()
            .map(|&(single, _)| Turnaround {
                single: SimTime::from_us(single),
                multi: SimTime::from_us(single),
            })
            .collect();
        prop_assert!((antt(&ideal) - 1.0).abs() < 1e-12);
    }

    /// Weighted fairness is always in [0, 1] and is 1 exactly when shares
    /// match the weight proportions.
    #[test]
    fn fairness_bounded_and_perfect_at_target(
        weights in prop::collection::vec(0.1f64..10.0, 1..6)
    ) {
        let total: f64 = weights.iter().sum();
        let perfect: Vec<FairnessEntry> = weights
            .iter()
            .map(|&w| FairnessEntry { share: w / total, weight: w })
            .collect();
        let f = weighted_fairness(&perfect);
        prop_assert!((f - 1.0).abs() < 1e-9, "perfect shares scored {f}");

        // Arbitrary (mis)allocation stays within bounds.
        let skewed: Vec<FairnessEntry> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| FairnessEntry {
                share: if i == 0 { 1.0 } else { 0.0 },
                weight: w,
            })
            .collect();
        let s = weighted_fairness(&skewed);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    /// Summary invariants: min <= geo_mean <= mean <= max for positive
    /// samples (AM-GM), and the CI shrinks as 1/sqrt(n).
    #[test]
    fn summary_order_relations(samples in prop::collection::vec(0.1f64..1000.0, 2..50)) {
        let s = Summary::of(&samples);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.geo_mean <= s.mean + 1e-9, "AM-GM violated: {} > {}", s.geo_mean, s.mean);
        prop_assert!(s.min <= s.geo_mean + 1e-9);
        let doubled: Vec<f64> = samples.iter().chain(samples.iter()).copied().collect();
        let s2 = Summary::of(&doubled);
        prop_assert!(s2.ci95_half_width() <= s.ci95_half_width() + 1e-12);
    }
}
