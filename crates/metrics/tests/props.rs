//! Property-based tests for metric invariants, on the in-tree `flep-check`
//! harness.

use flep_metrics::{antt, stp, weighted_fairness, FairnessEntry, Summary, Turnaround};
use flep_sim_core::check::{check, CheckConfig};
use flep_sim_core::{require, SimRng, SimTime};

/// `(single, extra)` pairs: single in [1, 100_000), extra in [0, 100_000).
fn gen_pairs(rng: &mut SimRng) -> Vec<(u64, u64)> {
    let n = rng.uniform_u64(1, 9) as usize;
    (0..n)
        .map(|_| (rng.uniform_u64(1, 99_999), rng.uniform_u64(0, 99_999)))
        .collect()
}

fn turnarounds(pairs: &[(u64, u64)]) -> Vec<Turnaround> {
    pairs
        .iter()
        .map(|&(single, extra)| Turnaround {
            single: SimTime::from_us(single.max(1)),
            multi: SimTime::from_us(single.max(1) + extra),
        })
        .collect()
}

/// STP of n kernels never exceeds n and is positive when all turnarounds
/// are sensible (multi >= single > 0).
#[test]
fn stp_bounded_by_job_count() {
    check(
        "stp_bounded_by_job_count",
        CheckConfig::default(),
        gen_pairs,
        |pairs| {
            flep_sim_core::assume!(!pairs.is_empty());
            let ts = turnarounds(pairs);
            let v = stp(&ts);
            require!(v > 0.0);
            require!(v <= ts.len() as f64 + 1e-9, "STP {v} > n {}", ts.len());
            Ok(())
        },
    );
}

/// ANTT is at least 1 when no kernel runs faster co-scheduled than alone,
/// and exactly 1 when nothing slows down.
#[test]
fn antt_at_least_one_without_speedups() {
    check(
        "antt_at_least_one_without_speedups",
        CheckConfig::default(),
        gen_pairs,
        |pairs| {
            flep_sim_core::assume!(!pairs.is_empty());
            let ts = turnarounds(pairs);
            require!(antt(&ts) >= 1.0 - 1e-9);
            let ideal: Vec<Turnaround> = ts
                .iter()
                .map(|t| Turnaround {
                    single: t.single,
                    multi: t.single,
                })
                .collect();
            require!((antt(&ideal) - 1.0).abs() < 1e-12);
            Ok(())
        },
    );
}

/// Weighted fairness is always in [0, 1] and is 1 exactly when shares
/// match the weight proportions.
#[test]
fn fairness_bounded_and_perfect_at_target() {
    check(
        "fairness_bounded_and_perfect_at_target",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(1, 5) as usize;
            (0..n)
                .map(|_| rng.uniform_f64(0.1, 10.0))
                .collect::<Vec<f64>>()
        },
        |weights| {
            flep_sim_core::assume!(!weights.is_empty());
            flep_sim_core::assume!(weights.iter().all(|w| (0.1..10.0).contains(w)));
            let total: f64 = weights.iter().sum();
            let perfect: Vec<FairnessEntry> = weights
                .iter()
                .map(|&w| FairnessEntry {
                    share: w / total,
                    weight: w,
                })
                .collect();
            let f = weighted_fairness(&perfect);
            require!((f - 1.0).abs() < 1e-9, "perfect shares scored {f}");

            // Arbitrary (mis)allocation stays within bounds.
            let skewed: Vec<FairnessEntry> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| FairnessEntry {
                    share: if i == 0 { 1.0 } else { 0.0 },
                    weight: w,
                })
                .collect();
            let s = weighted_fairness(&skewed);
            require!((0.0..=1.0).contains(&s));
            Ok(())
        },
    );
}

/// Summary invariants: min <= geo_mean <= mean <= max for positive samples
/// (AM-GM), and the CI shrinks as 1/sqrt(n).
#[test]
fn summary_order_relations() {
    check(
        "summary_order_relations",
        CheckConfig::default(),
        |rng: &mut SimRng| {
            let n = rng.uniform_u64(2, 49) as usize;
            (0..n)
                .map(|_| rng.uniform_f64(0.1, 1000.0))
                .collect::<Vec<f64>>()
        },
        |samples| {
            flep_sim_core::assume!(samples.len() >= 2);
            flep_sim_core::assume!(samples.iter().all(|s| (0.1..1000.0).contains(s)));
            let s = Summary::of(samples);
            require!(s.min <= s.mean + 1e-9);
            require!(s.mean <= s.max + 1e-9);
            require!(
                s.geo_mean <= s.mean + 1e-9,
                "AM-GM violated: {} > {}",
                s.geo_mean,
                s.mean
            );
            require!(s.min <= s.geo_mean + 1e-9);
            let doubled: Vec<f64> = samples.iter().chain(samples.iter()).copied().collect();
            let s2 = Summary::of(&doubled);
            require!(s2.ci95_half_width() <= s.ci95_half_width() + 1e-12);
            Ok(())
        },
    );
}
