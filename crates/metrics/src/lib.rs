//! Multiprogram performance metrics used throughout the FLEP evaluation.
//!
//! The paper adopts Eyerman & Eeckhout's system-level metrics (§6.1):
//!
//! * **NTT** (normalized turnaround time) of kernel *i*:
//!   `T_multi(i) / T_single(i)` — how much slower the kernel ran in the
//!   co-run than alone (≥ 1 in the absence of constructive interference).
//! * **ANTT** — the arithmetic mean of NTTs; the responsiveness metric of
//!   Figs. 10 and 12 (reported as *improvement*, i.e. `ANTT_baseline /
//!   ANTT_flep`).
//! * **STP** (system throughput) — `Σ T_single(i) / T_multi(i)`; Fig. 11
//!   reports its *degradation* relative to the baseline.
//! * **Performance degradation** of a kernel (§5.2.1):
//!   `(T_w + T_e) / T_e`, the quantity HPF's shortest-remaining-time rule
//!   approximately minimizes.
//! * **Weighted fairness** — per-kernel GPU-time shares against their
//!   priority weights (Fig. 13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod recovery;
mod stats;

pub use recovery::RecoverySummary;
pub use stats::{percentile_ns, tail_triple_ns, Percentiles, Summary};

use flep_sim_core::SimTime;

/// Turnaround observations for one kernel in a co-run: the time it took
/// alone and the time it took in the multiprogrammed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Turnaround {
    /// Turnaround when run alone on the GPU.
    pub single: SimTime,
    /// Turnaround in the co-run under evaluation.
    pub multi: SimTime,
}

impl Turnaround {
    /// Normalized turnaround time `multi / single`.
    ///
    /// Returns 0.0 when the standalone time is zero (degenerate input).
    #[must_use]
    pub fn ntt(&self) -> f64 {
        self.multi.ratio(self.single)
    }

    /// The per-kernel throughput contribution `single / multi`.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.single.ratio(self.multi)
    }
}

/// Average normalized turnaround time over a co-run.
///
/// Returns 0.0 for an empty slice.
///
/// # Example
///
/// ```
/// use flep_metrics::{antt, Turnaround};
/// use flep_sim_core::SimTime;
/// let t = [
///     Turnaround { single: SimTime::from_us(100), multi: SimTime::from_us(300) },
///     Turnaround { single: SimTime::from_us(50), multi: SimTime::from_us(50) },
/// ];
/// assert!((antt(&t) - 2.0).abs() < 1e-12); // (3.0 + 1.0) / 2
/// ```
#[must_use]
pub fn antt(turnarounds: &[Turnaround]) -> f64 {
    if turnarounds.is_empty() {
        return 0.0;
    }
    turnarounds.iter().map(Turnaround::ntt).sum::<f64>() / turnarounds.len() as f64
}

/// System throughput over a co-run: `Σ single / multi`.
///
/// An ideal co-run of `n` non-interfering kernels scores `n`.
#[must_use]
pub fn stp(turnarounds: &[Turnaround]) -> f64 {
    turnarounds.iter().map(Turnaround::throughput).sum()
}

/// Improvement factor of metric `candidate` over `baseline` where *lower is
/// better* (e.g. ANTT): `baseline / candidate`.
///
/// Returns 0.0 when the candidate value is zero.
#[must_use]
pub fn improvement(baseline: f64, candidate: f64) -> f64 {
    if candidate == 0.0 {
        0.0
    } else {
        baseline / candidate
    }
}

/// Relative degradation of `candidate` versus `baseline` where *higher is
/// better* (e.g. STP): `(baseline - candidate) / baseline`.
///
/// Returns 0.0 when the baseline is zero.
#[must_use]
pub fn degradation(baseline: f64, candidate: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - candidate) / baseline
    }
}

/// Per-kernel performance degradation `(T_w + T_e) / T_e` (§5.2.1), the
/// quantity HPF's shortest-remaining-time policy targets.
///
/// Returns 0.0 when the execution time is zero.
#[must_use]
pub fn performance_degradation(waiting: SimTime, execution: SimTime) -> f64 {
    (waiting + execution).ratio(execution)
}

/// One kernel's share of GPU time against its target weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessEntry {
    /// Measured share of GPU time, in `[0, 1]`.
    pub share: f64,
    /// Priority weight (`W_i` in §5.2.2).
    pub weight: f64,
}

/// Weighted-fairness score in `[0, 1]`: 1.0 when every kernel's measured
/// share equals its weight-proportional target, decreasing with total
/// absolute deviation.
///
/// Returns 1.0 for an empty slice (nothing to be unfair about) and 0.0 when
/// all weights are zero.
///
/// # Example
///
/// ```
/// use flep_metrics::{weighted_fairness, FairnessEntry};
/// let perfect = [
///     FairnessEntry { share: 2.0 / 3.0, weight: 2.0 },
///     FairnessEntry { share: 1.0 / 3.0, weight: 1.0 },
/// ];
/// assert!((weighted_fairness(&perfect) - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn weighted_fairness(entries: &[FairnessEntry]) -> f64 {
    if entries.is_empty() {
        return 1.0;
    }
    let total_weight: f64 = entries.iter().map(|e| e.weight).sum();
    if total_weight <= 0.0 {
        return 0.0;
    }
    let deviation: f64 = entries
        .iter()
        .map(|e| (e.share - e.weight / total_weight).abs())
        .sum();
    // Max possible deviation is 2.0 (all mass misplaced).
    (1.0 - deviation / 2.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(single_us: u64, multi_us: u64) -> Turnaround {
        Turnaround {
            single: SimTime::from_us(single_us),
            multi: SimTime::from_us(multi_us),
        }
    }

    #[test]
    fn ntt_of_unchanged_kernel_is_one() {
        assert!((t(100, 100).ntt() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn antt_averages() {
        let ts = [t(100, 400), t(100, 200)];
        assert!((antt(&ts) - 3.0).abs() < 1e-12);
        assert_eq!(antt(&[]), 0.0);
    }

    #[test]
    fn stp_sums_throughput() {
        let ts = [t(100, 200), t(100, 100)];
        assert!((stp(&ts) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn two_ideal_kernels_score_two() {
        let ts = [t(50, 50), t(70, 70)];
        assert!((stp(&ts) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_and_degradation() {
        assert!((improvement(8.0, 2.0) - 4.0).abs() < 1e-12);
        assert_eq!(improvement(8.0, 0.0), 0.0);
        assert!((degradation(2.0, 1.9) - 0.05).abs() < 1e-12);
        assert_eq!(degradation(0.0, 1.0), 0.0);
    }

    #[test]
    fn performance_degradation_formula() {
        let d = performance_degradation(SimTime::from_us(300), SimTime::from_us(100));
        assert!((d - 4.0).abs() < 1e-12);
        assert_eq!(
            performance_degradation(SimTime::from_us(1), SimTime::ZERO),
            0.0
        );
    }

    #[test]
    fn fairness_perfect_and_worst() {
        let perfect = [
            FairnessEntry {
                share: 0.5,
                weight: 1.0,
            },
            FairnessEntry {
                share: 0.5,
                weight: 1.0,
            },
        ];
        assert!((weighted_fairness(&perfect) - 1.0).abs() < 1e-12);
        let starved = [
            FairnessEntry {
                share: 1.0,
                weight: 0.0,
            },
            FairnessEntry {
                share: 0.0,
                weight: 1.0,
            },
        ];
        assert!(weighted_fairness(&starved) < 0.01);
    }

    #[test]
    fn fairness_edge_cases() {
        assert_eq!(weighted_fairness(&[]), 1.0);
        let zero_weights = [FairnessEntry {
            share: 1.0,
            weight: 0.0,
        }];
        assert_eq!(weighted_fairness(&zero_weights), 0.0);
    }

    #[test]
    fn fairness_two_to_one_split() {
        let e = [
            FairnessEntry {
                share: 2.0 / 3.0,
                weight: 2.0,
            },
            FairnessEntry {
                share: 1.0 / 3.0,
                weight: 1.0,
            },
        ];
        assert!(weighted_fairness(&e) > 0.999);
    }
}
