//! Structured per-run recovery accounting.
//!
//! Every layer of the stack emits recovery activity — the watchdog's
//! escalation ladder, the cluster's kill-migrate-restart path, the
//! breaker's quarantine/probe cycle, the serving frontend's brownout
//! shedding. Before this summary existed each test and bench counted the
//! events it cared about by hand; [`RecoverySummary`] is the one shared
//! tally, folded once by the producing layer and attached to its result
//! (`CoRunResult`, `ClusterResult`, `ServeReport`).

use flep_sim_core::json::{JsonValue, ToJson};

/// Counts of every recovery-path action taken during one run. All fields
/// are plain counters; the producing layer folds its own event taxonomy
/// into them (the metrics crate stays independent of those enums).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Watchdog escalations past the flag rung: forced drains.
    pub forced_drains: u64,
    /// Watchdog terminal rung: victims killed.
    pub kills: u64,
    /// Lost completion notifications reconciled by the watchdog.
    pub lost_notifications: u64,
    /// Grid launches retried after transient rejection.
    pub launch_retries: u64,
    /// Jobs migrated off a failed device.
    pub migrations: u64,
    /// Devices quarantined by the circuit breaker (closed → open).
    pub quarantines: u64,
    /// Breaker probe grids launched toward re-admission.
    pub probes: u64,
    /// Devices re-admitted by the breaker (half-open → closed).
    pub readmissions: u64,
    /// Requests shed at admission by brownout tiers (serving only).
    pub shed: u64,
}

impl RecoverySummary {
    /// True when no recovery action of any kind was taken — the healthy
    /// fast path, and the gate for omitting this block from JSON so
    /// fault-free goldens stay byte-identical.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == RecoverySummary::default()
    }

    /// Total actions across all counters.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.forced_drains
            + self.kills
            + self.lost_notifications
            + self.launch_retries
            + self.migrations
            + self.quarantines
            + self.probes
            + self.readmissions
            + self.shed
    }

    /// Adds another summary's counts into this one (e.g. folding
    /// per-tenant or per-device tallies into a run total).
    pub fn merge(&mut self, other: &RecoverySummary) {
        self.forced_drains += other.forced_drains;
        self.kills += other.kills;
        self.lost_notifications += other.lost_notifications;
        self.launch_retries += other.launch_retries;
        self.migrations += other.migrations;
        self.quarantines += other.quarantines;
        self.probes += other.probes;
        self.readmissions += other.readmissions;
        self.shed += other.shed;
    }
}

impl ToJson for RecoverySummary {
    fn to_json(&self) -> JsonValue {
        // Only nonzero counters are emitted, so adding a new recovery
        // class later never perturbs existing artifacts.
        let mut fields: Vec<(&str, JsonValue)> = Vec::new();
        for (key, value) in [
            ("forced_drains", self.forced_drains),
            ("kills", self.kills),
            ("lost_notifications", self.lost_notifications),
            ("launch_retries", self.launch_retries),
            ("migrations", self.migrations),
            ("quarantines", self.quarantines),
            ("probes", self.probes),
            ("readmissions", self.readmissions),
            ("shed", self.shed),
        ] {
            if value > 0 {
                fields.push((key, value.to_json()));
            }
        }
        JsonValue::object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        let s = RecoverySummary::default();
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
        assert_eq!(s.to_json().render(), "{}");
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = RecoverySummary {
            kills: 2,
            migrations: 1,
            ..RecoverySummary::default()
        };
        let b = RecoverySummary {
            kills: 1,
            quarantines: 3,
            shed: 5,
            ..RecoverySummary::default()
        };
        a.merge(&b);
        assert_eq!(a.kills, 3);
        assert_eq!(a.migrations, 1);
        assert_eq!(a.quarantines, 3);
        assert_eq!(a.shed, 5);
        assert_eq!(a.total(), 12);
        assert!(!a.is_empty());
    }

    #[test]
    fn json_omits_zero_counters() {
        let s = RecoverySummary {
            migrations: 4,
            quarantines: 1,
            ..RecoverySummary::default()
        };
        assert_eq!(s.to_json().render(), r#"{"migrations":4,"quarantines":1}"#);
    }
}
