//! Summary statistics for experiment reporting.

/// Descriptive statistics of a sample, as printed in the experiment tables
/// (mean with min/max range and standard deviation for error bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Geometric mean (0.0 if any sample is non-positive). Speedup-style
    /// ratios are conventionally aggregated geometrically.
    pub geo_mean: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// Returns a zeroed summary for an empty slice.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                geo_mean: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let geo_mean = if samples.iter().all(|&x| x > 0.0) {
            (samples.iter().map(|x| x.ln()).sum::<f64>() / n).exp()
        } else {
            0.0
        };
        Summary {
            n: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            geo_mean,
        }
    }

    /// Half-width of an approximate 95% confidence interval on the mean
    /// (normal approximation).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.n as f64).sqrt()
    }
}

/// Tail-latency percentiles of a nanosecond sample, as reported by the
/// serving experiments (p50 for the median user, p99/p999 for the tail
/// the SLO is really about).
///
/// Computed with the nearest-rank method in pure integer arithmetic —
/// `rank = round(q * (n - 1))` on the sorted sample — so the values are
/// exact sample elements and bit-identical across platforms and thread
/// counts (no float interpolation to drift).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Number of samples.
    pub n: usize,
    /// Median (50th percentile), in nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, in nanoseconds.
    pub p999_ns: u64,
}

impl Percentiles {
    /// Computes the percentiles of a nanosecond sample. Sorts the slice in
    /// place; returns `None` for an empty sample.
    #[must_use]
    pub fn of_ns(samples: &mut [u64]) -> Option<Percentiles> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        Some(Percentiles {
            n: samples.len(),
            p50_ns: percentile_ns(samples, 50, 100),
            p99_ns: percentile_ns(samples, 99, 100),
            p999_ns: percentile_ns(samples, 999, 1000),
        })
    }
}

/// The `(p50, p99, p999)` nanosecond triple of an optional percentile
/// summary, zeroed when no sample completed.
///
/// This is the one place the "no data" convention lives: every report
/// table and JSON artifact that prints a tail triple goes through here
/// instead of re-matching `Option<Percentiles>` locally.
#[must_use]
pub fn tail_triple_ns(latency: Option<Percentiles>) -> (u64, u64, u64) {
    match latency {
        Some(p) => (p.p50_ns, p.p99_ns, p.p999_ns),
        None => (0, 0, 0),
    }
}

/// Nearest-rank percentile `num/den` of an ascending-sorted sample:
/// `sorted[round(num/den * (n - 1))]`, with the rounding done in integer
/// arithmetic (half-up) for cross-platform determinism.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn percentile_ns(sorted: &[u64], num: u64, den: u64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "unsorted sample");
    let n = sorted.len() as u64;
    let rank = (num * (n - 1) + den / 2) / den;
    sorted[rank as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert!((s.geo_mean - 5.0).abs() < 1e-12);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_of_varied_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert!(s.geo_mean > 2.0 && s.geo_mean < 2.5);
    }

    #[test]
    fn empty_sample_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn geo_mean_zero_with_nonpositive_samples() {
        let s = Summary::of(&[1.0, 0.0]);
        assert_eq!(s.geo_mean, 0.0);
        let s2 = Summary::of(&[2.0, -1.0]);
        assert_eq!(s2.geo_mean, 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 3.0]);
        let many = Summary::of(&[1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0]);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn percentiles_of_small_sample() {
        let mut v: Vec<u64> = (1..=100).rev().collect();
        let p = Percentiles::of_ns(&mut v).unwrap();
        // Sorted 1..=100: rank(q) = round(q * 99).
        assert_eq!(p.p50_ns, 51); // round(0.5 * 99) = 50 -> value 51
        assert_eq!(p.p99_ns, 99); // round(0.99 * 99) = 98 -> value 99
        assert_eq!(p.p999_ns, 100); // round(0.999 * 99) = 99 -> value 100
        assert_eq!(p.n, 100);
    }

    #[test]
    fn percentiles_of_singleton_and_empty() {
        assert_eq!(Percentiles::of_ns(&mut []), None);
        let p = Percentiles::of_ns(&mut [7]).unwrap();
        assert_eq!((p.p50_ns, p.p99_ns, p.p999_ns), (7, 7, 7));
    }

    #[test]
    fn tail_triple_unwraps_and_zeroes() {
        assert_eq!(tail_triple_ns(None), (0, 0, 0));
        let p = Percentiles::of_ns(&mut [10, 20, 30]).unwrap();
        assert_eq!(tail_triple_ns(Some(p)), (p.p50_ns, p.p99_ns, p.p999_ns));
    }

    #[test]
    fn percentile_rank_is_monotone_in_q() {
        let sorted: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let p50 = percentile_ns(&sorted, 50, 100);
        let p99 = percentile_ns(&sorted, 99, 100);
        let p999 = percentile_ns(&sorted, 999, 1000);
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(p999, sorted[998]); // round(0.999 * 999) = 998
    }
}
