//! Summary statistics for experiment reporting.

/// Descriptive statistics of a sample, as printed in the experiment tables
/// (mean with min/max range and standard deviation for error bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Geometric mean (0.0 if any sample is non-positive). Speedup-style
    /// ratios are conventionally aggregated geometrically.
    pub geo_mean: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// Returns a zeroed summary for an empty slice.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                geo_mean: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let geo_mean = if samples.iter().all(|&x| x > 0.0) {
            (samples.iter().map(|x| x.ln()).sum::<f64>() / n).exp()
        } else {
            0.0
        };
        Summary {
            n: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            geo_mean,
        }
    }

    /// Half-width of an approximate 95% confidence interval on the mean
    /// (normal approximation).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert!((s.geo_mean - 5.0).abs() < 1e-12);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_of_varied_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert!(s.geo_mean > 2.0 && s.geo_mean < 2.5);
    }

    #[test]
    fn empty_sample_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn geo_mean_zero_with_nonpositive_samples() {
        let s = Summary::of(&[1.0, 0.0]);
        assert_eq!(s.geo_mean, 0.0);
        let s2 = Summary::of(&[2.0, -1.0]);
        assert_eq!(s2.geo_mean, 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 3.0]);
        let many = Summary::of(&[1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0]);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }
}
