#!/usr/bin/env sh
# Hermetic CI entry point: builds, tests, and lints the whole workspace
# without touching the network. `--offline` is load-bearing — it proves
# the zero-dependency policy (DESIGN.md §5) holds: every crate in
# Cargo.lock is a workspace member, so a bare Rust toolchain on an
# air-gapped machine is enough.
#
# Usage: ./ci.sh [stage]
#
# With no argument every stage runs in order. With a stage name only that
# stage runs (after whatever build it needs): build, test, fmt, clippy,
# hot-path, sim-corun, faults, fault-recovery, serve, cluster-smoke,
# cluster-scale, chaos-smoke, queue-ablation, perf-gate.
set -eu

cd "$(dirname "$0")"
ROOT="$PWD"

stage_build() {
    echo "==> cargo build --workspace --release --offline"
    cargo build --workspace --release --offline
}

stage_test() {
    echo "==> cargo test --workspace -q --offline"
    cargo test --workspace -q --offline
}

stage_fmt() {
    echo "==> cargo fmt --all --check"
    cargo fmt --all --check
}

stage_clippy() {
    echo "==> cargo clippy --workspace --offline -- -D warnings"
    cargo clippy --workspace --offline -- -D warnings
}

# Perf smoke: a handful of samples of the event-queue churn targets,
# recorded to a JSON artifact so the hot-path perf trajectory is on file
# for every CI run. Not a gate — timings on shared runners are noisy —
# just a tripwire someone can diff when a simulation suddenly crawls.
stage_hot_path() {
    echo "==> perf smoke: event_queue_churn -> BENCH_sim_hot_path.json"
    FLEP_BENCH_SAMPLES=5 FLEP_BENCH_WARMUP=1 \
        FLEP_BENCH_JSON="$ROOT/BENCH_sim_hot_path.json" \
        cargo bench -p flep-bench --offline -q -- event_queue
    # The frozen Box-Muller noise stream in isolation (~half of every
    # sim_corun median), so perf work on the machinery has a number to
    # subtract. Wall-clock context only — no baseline, never gated.
    echo "==> perf smoke: noise_stream -> BENCH_noise_stream.json"
    FLEP_BENCH_SAMPLES=5 FLEP_BENCH_WARMUP=1 \
        FLEP_BENCH_JSON="$ROOT/BENCH_noise_stream.json" \
        cargo bench -p flep-bench --offline -q -- noise_stream
}

# Perf smoke for the simulator world hot path: end-to-end co-runs that
# exercise the dense grid table, the incremental contention counters, and
# the SM-placement index (DESIGN.md §8). The artifact feeds the perf-gate
# stage below.
stage_sim_corun() {
    echo "==> perf smoke: sim_corun -> BENCH_sim_corun.json"
    FLEP_BENCH_SAMPLES=3 FLEP_BENCH_WARMUP=1 \
        FLEP_BENCH_JSON="$ROOT/BENCH_sim_corun.json" \
        cargo bench -p flep-bench --offline -q -- sim_corun
}

# Fault injection: the robustness property suite replayed with a pinned
# seed (DESIGN.md §9). The same properties run with a fresh seed in the
# normal test pass above; this pinned pass is the reproducible gate — a
# failure here is a regression, never bad luck.
stage_faults() {
    echo "==> fault injection: property suite with pinned seed"
    FLEP_CHECK_SEED=0xF1E9 FLEP_CHECK_CASES=48 \
        cargo test -p flep-runtime --test faults --offline -q
}

# Recovery-latency smoke: how long the watchdog's escalation ladder takes
# to rescue a high-priority kernel under each fault preset, recorded in
# the same artifact format as the perf smokes above. Simulated time, so
# fully deterministic — but still an artifact, not a gate.
stage_fault_recovery() {
    echo "==> fault recovery: escalation-ladder latency -> BENCH_fault_recovery.json"
    FLEP_FAULT_SEED=7 FLEP_REPEATS=3 \
        FLEP_BENCH_JSON="$ROOT/BENCH_fault_recovery.json" \
        cargo run --release -p flep-bench --bin fault_recovery --offline -q >/dev/null
}

# Serving smoke: the SLO sweep at a reduced horizon with a pinned seed,
# recorded as a perf artifact (which also feeds the perf-gate stage). The
# golden gate is the pinned serve trace
# (crates/flep-serve/tests/golden_serve.rs, re-run here with a pinned
# check seed): any drift in arrivals, admission, EDF order, batching, or
# runtime scheduling fails this stage.
stage_serve() {
    echo "==> serve smoke: slo sweep -> BENCH_serve_slo.json"
    FLEP_SEED=42 FLEP_REPEATS=1 FLEP_SERVE_HORIZON_MS=200 \
        FLEP_BENCH_JSON="$ROOT/BENCH_serve_slo.json" \
        cargo run --release -p flep-bench --bin serve_slo --offline -q >/dev/null
    FLEP_CHECK_SEED=0xF1E9 FLEP_CHECK_CASES=48 \
        cargo test -p flep-serve --offline -q
}

# Cluster smoke (DESIGN.md §11): the pinned-seed failover suites — device
# failure domains, kill-migrate-restart recovery, ledger reconciliation —
# plus the cluster failover sweep recorded as BENCH_cluster.json. The
# sweep's deterministic rows are compared across worker-thread counts:
# any byte of divergence between a serial and a parallel run fails the
# stage.
stage_cluster_smoke() {
    echo "==> cluster smoke: failover suites + sweep -> BENCH_cluster.json"
    cargo test -p flep-runtime --test cluster --offline -q
    cargo test -p flep-serve --test failover --offline -q
    FLEP_SEED=42 FLEP_REPEATS=3 \
        FLEP_BENCH_JSON="$ROOT/BENCH_cluster.json" FLEP_JSON=- \
        FLEP_THREADS=1 \
        cargo run --release -p flep-bench --bin cluster_failover --offline -q \
        | grep '^{' > "$ROOT/target/cluster_rows_t1.json"
    FLEP_SEED=42 FLEP_REPEATS=1 FLEP_JSON=- FLEP_THREADS=8 \
        cargo run --release -p flep-bench --bin cluster_failover --offline -q \
        | grep '^{' > "$ROOT/target/cluster_rows_t8.json"
    if ! cmp -s "$ROOT/target/cluster_rows_t1.json" "$ROOT/target/cluster_rows_t8.json"; then
        echo "cluster smoke: sweep rows differ between FLEP_THREADS=1 and 8" >&2
        exit 1
    fi
    echo "cluster smoke: sweep rows byte-identical at FLEP_THREADS=1 and 8"
}

# Cluster scale-out (DESIGN.md §13): the partitioned-scheduler headline.
# The full sweep (d = 8..1024, watchdog armed, faults off so the epoch
# driver engages) records BENCH_cluster_scale.json for the perf gate:
# `makespan_*` rows are deterministic simulated time, and the permille
# ratio row pins per-device wall-clock at d=1024 to within the gated
# bound of d=8. A reduced sweep is then replayed at FLEP_THREADS=1 and 8
# and its deterministic rows compared byte-for-byte, the same
# thread-count gate the failover sweep gets.
stage_cluster_scale() {
    echo "==> cluster scale-out: sweep -> BENCH_cluster_scale.json"
    FLEP_SEED=42 FLEP_REPEATS=3 FLEP_THREADS=1 \
        FLEP_BENCH_JSON="$ROOT/BENCH_cluster_scale.json" \
        cargo run --release -p flep-bench --bin cluster_scale --offline -q
    FLEP_SEED=42 FLEP_REPEATS=1 FLEP_SCALE_DEVICES=8,64 FLEP_JSON=- \
        FLEP_THREADS=1 \
        cargo run --release -p flep-bench --bin cluster_scale --offline -q \
        | grep '^{' > "$ROOT/target/scale_rows_t1.json"
    FLEP_SEED=42 FLEP_REPEATS=1 FLEP_SCALE_DEVICES=8,64 FLEP_JSON=- \
        FLEP_THREADS=8 \
        cargo run --release -p flep-bench --bin cluster_scale --offline -q \
        | grep '^{' > "$ROOT/target/scale_rows_t8.json"
    if ! cmp -s "$ROOT/target/scale_rows_t1.json" "$ROOT/target/scale_rows_t8.json"; then
        echo "cluster scale: sweep rows differ between FLEP_THREADS=1 and 8" >&2
        exit 1
    fi
    echo "cluster scale: sweep rows byte-identical at FLEP_THREADS=1 and 8"
}

# Chaos smoke (DESIGN.md §14): the health-aware control plane under
# seeded correlated outages. The pinned-seed chaos and breaker suites
# prove ledger conservation, quarantine isolation, and bounded-fault
# liveness; the chaos sweep (rate x topology) records BENCH_chaos.json
# for the perf gate, and its deterministic rows are compared between a
# serial and a parallel run — any byte of divergence fails the stage.
stage_chaos_smoke() {
    echo "==> chaos smoke: chaos + breaker + brownout suites"
    FLEP_CHECK_SEED=0xF1E9 FLEP_CHECK_CASES=32 \
        cargo test -p flep-runtime --test chaos --offline -q
    cargo test -p flep-runtime --test breaker --offline -q
    cargo test -p flep-serve --test brownout --offline -q
    echo "==> chaos sweep -> BENCH_chaos.json"
    FLEP_SEED=42 FLEP_REPEATS=3 \
        FLEP_BENCH_JSON="$ROOT/BENCH_chaos.json" FLEP_JSON=- \
        FLEP_THREADS=1 \
        cargo run --release -p flep-bench --bin chaos_sweep --offline -q \
        | grep '^{' > "$ROOT/target/chaos_rows_t1.json"
    FLEP_SEED=42 FLEP_REPEATS=1 FLEP_JSON=- FLEP_THREADS=8 \
        cargo run --release -p flep-bench --bin chaos_sweep --offline -q \
        | grep '^{' > "$ROOT/target/chaos_rows_t8.json"
    if ! cmp -s "$ROOT/target/chaos_rows_t1.json" "$ROOT/target/chaos_rows_t8.json"; then
        echo "chaos smoke: sweep rows differ between FLEP_THREADS=1 and 8" >&2
        exit 1
    fi
    echo "chaos smoke: sweep rows byte-identical at FLEP_THREADS=1 and 8"
}

# Queue ablation (DESIGN.md §12): the tier-1 golden suites replayed with
# each event-queue backend forced, proving the ladder queue and the
# 4-ary heap produce byte-identical simulations — same pinned traces,
# same figure JSON — so backend choice is purely a perf knob. Also
# records the heap-vs-ladder periodic-churn micro pair as
# BENCH_queue_ablation.json for the perf gate.
stage_queue_ablation() {
    echo "==> queue ablation: golden suites under FLEP_QUEUE=heap and ladder"
    for backend in heap ladder; do
        echo "==> FLEP_QUEUE=$backend: determinism + golden_serve suites"
        FLEP_QUEUE=$backend cargo test --test determinism --offline -q
        FLEP_QUEUE=$backend cargo test -p flep-serve --test golden_serve --offline -q
    done
    echo "==> queue ablation micro pair -> BENCH_queue_ablation.json"
    FLEP_BENCH_SAMPLES=5 FLEP_BENCH_WARMUP=1 \
        FLEP_BENCH_JSON="$ROOT/BENCH_queue_ablation.json" \
        cargo bench -p flep-bench --offline -q -- queue_ablation
}

# Perf-regression gate: fails if the medians recorded by the sim-corun,
# serve, fault-recovery, cluster-smoke, cluster-scale, chaos-smoke, or
# queue-ablation stages regressed more than FLEP_PERF_TOLERANCE percent (default 15) against
# the checked-in baselines. One invocation checks every pair and
# reports every regressing row before failing, so a regression in the
# first artifact cannot mask one in the last. sim_corun and
# queue_ablation medians are wall-clock (the tolerance absorbs runner
# noise); serve_slo / fault_recovery / cluster medians are simulated
# time, so any drift there is a real behavior change.
stage_perf_gate() {
    echo "==> perf gate: recorded artifacts vs baselines/"
    cargo run --release -p flep-bench --bin perf_gate --offline -q -- \
        "$ROOT/BENCH_sim_corun.json" "$ROOT/baselines/BENCH_sim_corun.json" \
        "$ROOT/BENCH_serve_slo.json" "$ROOT/baselines/BENCH_serve_slo.json" \
        "$ROOT/BENCH_fault_recovery.json" "$ROOT/baselines/BENCH_fault_recovery.json" \
        "$ROOT/BENCH_cluster.json" "$ROOT/baselines/BENCH_cluster.json" \
        "$ROOT/BENCH_cluster_scale.json" "$ROOT/baselines/BENCH_cluster_scale.json" \
        "$ROOT/BENCH_chaos.json" "$ROOT/baselines/BENCH_chaos.json" \
        "$ROOT/BENCH_queue_ablation.json" "$ROOT/baselines/BENCH_queue_ablation.json"
}

run_stage() {
    case "$1" in
        build) stage_build ;;
        test) stage_test ;;
        fmt) stage_fmt ;;
        clippy) stage_clippy ;;
        hot-path) stage_hot_path ;;
        sim-corun) stage_sim_corun ;;
        faults) stage_faults ;;
        fault-recovery) stage_fault_recovery ;;
        serve) stage_serve ;;
        cluster-smoke) stage_cluster_smoke ;;
        cluster-scale) stage_cluster_scale ;;
        chaos-smoke) stage_chaos_smoke ;;
        queue-ablation) stage_queue_ablation ;;
        perf-gate) stage_perf_gate ;;
        *)
            echo "ci.sh: unknown stage '$1' (want build, test, fmt, clippy," >&2
            echo "       hot-path, sim-corun, faults, fault-recovery, serve," >&2
            echo "       cluster-smoke, cluster-scale, chaos-smoke," >&2
            echo "       queue-ablation, perf-gate)" >&2
            exit 2
            ;;
    esac
}

mkdir -p "$ROOT/target"
if [ $# -ge 1 ]; then
    for s in "$@"; do
        run_stage "$s"
    done
    echo "ci.sh: stage(s) passed: $*"
else
    stage_build
    stage_test
    stage_fmt
    stage_clippy
    stage_hot_path
    stage_sim_corun
    stage_faults
    stage_fault_recovery
    stage_serve
    stage_cluster_smoke
    stage_cluster_scale
    stage_chaos_smoke
    stage_queue_ablation
    stage_perf_gate
    echo "ci.sh: all checks passed"
fi
