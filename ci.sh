#!/usr/bin/env sh
# Hermetic CI entry point: builds, tests, and lints the whole workspace
# without touching the network. `--offline` is load-bearing — it proves
# the zero-dependency policy (DESIGN.md §5) holds: every crate in
# Cargo.lock is a workspace member, so a bare Rust toolchain on an
# air-gapped machine is enough.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "ci.sh: all checks passed"
