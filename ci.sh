#!/usr/bin/env sh
# Hermetic CI entry point: builds, tests, and lints the whole workspace
# without touching the network. `--offline` is load-bearing — it proves
# the zero-dependency policy (DESIGN.md §5) holds: every crate in
# Cargo.lock is a workspace member, so a bare Rust toolchain on an
# air-gapped machine is enough.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo fmt --all --check"
cargo fmt --all --check

# Perf smoke: a handful of samples of the event-queue churn targets,
# recorded to a JSON artifact so the hot-path perf trajectory is on file
# for every CI run. Not a gate — timings on shared runners are noisy —
# just a tripwire someone can diff when a simulation suddenly crawls.
echo "==> perf smoke: event_queue_churn -> BENCH_sim_hot_path.json"
FLEP_BENCH_SAMPLES=5 FLEP_BENCH_WARMUP=1 FLEP_BENCH_JSON=BENCH_sim_hot_path.json \
    cargo bench -p flep-bench --offline -q -- event_queue

# Perf smoke for the simulator world hot path: end-to-end co-runs that
# exercise the dense grid table, the incremental contention counters, and
# the SM-placement index (DESIGN.md §8). Same contract as above: an
# artifact, not a gate.
echo "==> perf smoke: sim_corun -> BENCH_sim_corun.json"
FLEP_BENCH_SAMPLES=3 FLEP_BENCH_WARMUP=1 FLEP_BENCH_JSON=BENCH_sim_corun.json \
    cargo bench -p flep-bench --offline -q -- sim_corun

# Fault injection: the robustness property suite replayed with a pinned
# seed (DESIGN.md §9). The same properties run with a fresh seed in the
# normal test pass above; this pinned pass is the reproducible gate — a
# failure here is a regression, never bad luck.
echo "==> fault injection: property suite with pinned seed"
FLEP_CHECK_SEED=0xF1E9 FLEP_CHECK_CASES=48 \
    cargo test -p flep-runtime --test faults --offline -q

# Recovery-latency smoke: how long the watchdog's escalation ladder takes
# to rescue a high-priority kernel under each fault preset, recorded in
# the same artifact format as the perf smokes above. Simulated time, so
# fully deterministic — but still an artifact, not a gate.
echo "==> fault recovery: escalation-ladder latency -> BENCH_fault_recovery.json"
FLEP_FAULT_SEED=7 FLEP_REPEATS=3 FLEP_BENCH_JSON=BENCH_fault_recovery.json \
    cargo run --release -p flep-bench --bin fault_recovery --offline -q >/dev/null

# Serving smoke: the SLO sweep at a reduced horizon with a pinned seed,
# recorded as a perf artifact. The golden gate is the pinned serve trace
# (crates/flep-serve/tests/golden_serve.rs, re-run here with a pinned
# check seed): any drift in arrivals, admission, EDF order, batching, or
# runtime scheduling fails this stage.
echo "==> serve smoke: slo sweep -> BENCH_serve_slo.json"
FLEP_SEED=42 FLEP_REPEATS=1 FLEP_SERVE_HORIZON_MS=200 \
    FLEP_BENCH_JSON=BENCH_serve_slo.json \
    cargo run --release -p flep-bench --bin serve_slo --offline -q >/dev/null
FLEP_CHECK_SEED=0xF1E9 FLEP_CHECK_CASES=48 \
    cargo test -p flep-serve --offline -q

echo "ci.sh: all checks passed"
