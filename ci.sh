#!/usr/bin/env sh
# Hermetic CI entry point: builds, tests, and lints the whole workspace
# without touching the network. `--offline` is load-bearing — it proves
# the zero-dependency policy (DESIGN.md §5) holds: every crate in
# Cargo.lock is a workspace member, so a bare Rust toolchain on an
# air-gapped machine is enough.
#
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> cargo fmt --all --check"
cargo fmt --all --check

# Perf smoke: a handful of samples of the event-queue churn targets,
# recorded to a JSON artifact so the hot-path perf trajectory is on file
# for every CI run. Not a gate — timings on shared runners are noisy —
# just a tripwire someone can diff when a simulation suddenly crawls.
echo "==> perf smoke: event_queue_churn -> BENCH_sim_hot_path.json"
FLEP_BENCH_SAMPLES=5 FLEP_BENCH_WARMUP=1 FLEP_BENCH_JSON=BENCH_sim_hot_path.json \
    cargo bench -p flep-bench --offline -q -- event_queue

# Perf smoke for the simulator world hot path: end-to-end co-runs that
# exercise the dense grid table, the incremental contention counters, and
# the SM-placement index (DESIGN.md §8). Same contract as above: an
# artifact, not a gate.
echo "==> perf smoke: sim_corun -> BENCH_sim_corun.json"
FLEP_BENCH_SAMPLES=3 FLEP_BENCH_WARMUP=1 FLEP_BENCH_JSON=BENCH_sim_corun.json \
    cargo bench -p flep-bench --offline -q -- sim_corun

echo "ci.sh: all checks passed"
