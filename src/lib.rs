//! `flep-suite` — the workspace umbrella crate.
//!
//! This package exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) at the repository root. For
//! library use, depend on [`flep_core`] directly; its
//! [`prelude`](flep_core::prelude) re-exports everything the examples use.
//!
//! ```
//! use flep_suite::core::prelude::*;
//!
//! let bench = Benchmark::get(BenchmarkId::Va);
//! assert_eq!(bench.table1_amortize, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flep_core as core;
