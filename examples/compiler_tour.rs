//! A tour of the FLEP compilation engine: all three Fig. 4 kernel forms,
//! the Fig. 5 host state machine, the kernel-slicing baseline, and the
//! offline amortizing-factor tuner, applied to a real benchmark kernel.
//!
//! Run with:
//! ```sh
//! cargo run --release --example compiler_tour
//! ```

use flep_compile::slice_transform;
use flep_core::prelude::*;

fn main() {
    let id = BenchmarkId::Spmv;
    let source = flep_workloads::source(id);
    let program = parse(source).expect("benchmark sources are valid");

    println!("=== Original kernel ({id}) ===\n{program}");

    for (mode, label) in [
        (TransformMode::TemporalNaive, "Fig. 4(a): naive temporal"),
        (
            TransformMode::TemporalAmortized,
            "Fig. 4(b): amortized temporal",
        ),
        (TransformMode::Spatial, "Fig. 4(c): spatial"),
    ] {
        let out = transform(&program, mode).expect("transformable");
        println!("=== {label} ===\n");
        // Print just the generated persistent kernel, not the whole unit.
        let meta = &out.kernels[0];
        let kernel = out
            .program
            .function(&meta.persistent)
            .expect("generated kernel exists");
        println!("{kernel}");
    }

    // The rewritten host code: the Fig. 5 state machine.
    let out = transform(&program, TransformMode::Spatial).expect("transformable");
    let host = out
        .program
        .functions
        .iter()
        .find(|f| f.kind == flep_minicu::FnKind::Host)
        .expect("host fn");
    println!("=== Fig. 5: transformed host code ===\n\n{host}");

    // The kernel-slicing baseline transform.
    let sliced = slice_transform(&program, 120).expect("sliceable");
    println!("=== Kernel-slicing baseline (120-CTA slices) ===\n\n{sliced}");

    // The offline tuner: smallest amortizing factor under the 4% budget.
    let cfg = GpuConfig::k40();
    let bench = Benchmark::get(id);
    let result = tune(&cfg, &bench);
    println!("=== Offline amortizing-factor tuning for {id} ===\n");
    for trial in &result.trials {
        println!(
            "  L = {:>4}: overhead {:>6.2}%  {}",
            trial.amortize,
            trial.overhead * 100.0,
            if trial.overhead < 0.04 {
                "PASS"
            } else {
                "fail"
            }
        );
    }
    println!(
        "\nchosen L = {} (paper's Table 1: {})",
        result.chosen, bench.table1_amortize
    );
}
