//! Cloud multi-tenancy: spatial preemption and weighted fairness.
//!
//! The paper motivates spatial preemption with cloud platforms "where the
//! GPU may need to process a large number of short queries from
//! user-facing interactive applications" (§2.2). This example runs both
//! halves of that story:
//!
//! 1. **Micro-queries vs a batch job** — a stream of trivial-input queries
//!    keeps preempting a long CFD solve. Spatial preemption (yield 5 of 15
//!    SMs) is compared with temporal preemption (yield everything).
//! 2. **Weighted fair sharing** — two tenants with a 2:1 priority ratio
//!    loop forever under the FFS policy; their GPU shares converge to
//!    2/3 vs 1/3 while total throughput degradation stays near the
//!    configured 10% budget (Figs. 13/14).
//!
//! Run with:
//! ```sh
//! cargo run --release --example cloud_serving
//! ```

use flep_core::prelude::*;

fn main() {
    micro_queries();
    println!();
    fair_sharing();
}

/// Part 1: a batch job repeatedly preempted by short interactive queries.
fn micro_queries() {
    let cfg = GpuConfig::k40();
    let store = ModelStore::train(7);
    let batch = Benchmark::get(BenchmarkId::Cfd);
    let query = Benchmark::get(BenchmarkId::Va);

    println!("=== Part 1: micro-queries preempting a batch solver ===");
    println!(
        "batch: {} large ({}); queries: 4x {} trivial ({} CTAs, {} SMs)\n",
        batch.id,
        batch.expected_standalone(InputClass::Large, 120),
        query.id,
        query.profile(InputClass::Trivial).tasks,
        KernelProfile::of(&query, InputClass::Trivial)
            .sms_needed(&cfg, query.profile(InputClass::Trivial).tasks),
    );

    let run = |policy: Policy| {
        let mut corun = CoRun::new(cfg.clone(), policy).job(
            JobSpec::new(KernelProfile::of(&batch, InputClass::Large), SimTime::ZERO)
                .with_priority(1)
                .with_predicted(store.predict(&batch, InputClass::Large))
                .with_seed(11),
        );
        // Four queries arriving every 2ms.
        for q in 0..4u64 {
            corun = corun.job(
                JobSpec::new(
                    KernelProfile::of(&query, InputClass::Trivial),
                    SimTime::from_ms(1) + SimTime::from_ms(2) * q,
                )
                .with_priority(2)
                .with_predicted(store.predict(&query, InputClass::Trivial))
                .with_seed(100 + q),
            );
        }
        corun.run()
    };

    for (label, policy) in [
        ("temporal preemption (yield all 15 SMs)", Policy::hpf()),
        ("spatial preemption (yield 5 SMs)", Policy::hpf_spatial()),
    ] {
        let r = run(policy);
        let batch_done = r.jobs[0].completed.unwrap();
        let mean_query_us: f64 = r.jobs[1..]
            .iter()
            .map(|j| j.turnaround().unwrap().as_us())
            .sum::<f64>()
            / 4.0;
        println!("{label}:");
        println!(
            "  batch completed {batch_done}, mean query turnaround {:.0}us",
            mean_query_us
        );
    }
}

/// Part 2: two looping tenants under weighted-fair scheduling.
fn fair_sharing() {
    let cfg = GpuConfig::k40();
    let store = ModelStore::train(7);
    let a = Benchmark::get(BenchmarkId::Pf);
    let b = Benchmark::get(BenchmarkId::Pl);
    let horizon = SimTime::from_ms(200);

    println!("=== Part 2: weighted fair sharing (FFS, weights 2:1, max_overhead 10%) ===");
    let result = CoRun::new(cfg, Policy::Ffs { max_overhead: 0.10 })
        .with_span_trace() // windowed gpu_share below needs spans
        .job(
            JobSpec::new(KernelProfile::of(&a, InputClass::Large), SimTime::ZERO)
                .with_priority(2)
                .with_predicted(store.predict(&a, InputClass::Large))
                .looping(),
        )
        .job(
            JobSpec::new(
                KernelProfile::of(&b, InputClass::Large),
                SimTime::from_us(5),
            )
            .with_priority(1)
            .with_predicted(store.predict(&b, InputClass::Large))
            .looping(),
        )
        .horizon(horizon)
        .run();

    println!("\n  window      {:>8}  {:>8}", a.id, b.id);
    let window = SimTime::from_ms(25);
    let mut t = SimTime::ZERO;
    while t + window <= horizon {
        let sa = result.gpu_share(0, t, t + window);
        let sb = result.gpu_share(1, t, t + window);
        println!(
            "  {:>4}-{:<4}  {:>7.1}%  {:>7.1}%",
            t.as_ms(),
            (t + window).as_ms(),
            sa * 100.0,
            sb * 100.0
        );
        t += window;
    }
    println!(
        "\n  completions over {horizon}: {} x{}  {} x{}",
        a.id, result.jobs[0].completions, b.id, result.jobs[1].completions
    );
    println!("  target shares: 66.7% / 33.3%");
}
