//! Device-memory oversubscription with the GPUSwap integration — the
//! future-work extension the paper plans in §8 ("We plan to integrate
//! GPUSwap into FLEP to handle large working sets").
//!
//! Two analytics tenants alternate on one GPU under FLEP/HPF. Their
//! working sets are measured against a deliberately small 1 GiB device:
//! when both fit, scheduling is pure FLEP; when each needs 3/4 of device
//! memory, every preemption-driven handoff also swaps working sets over
//! PCIe, and the swap traffic becomes visible in both the statistics and
//! the makespan.
//!
//! Run with:
//! ```sh
//! cargo run --release --example memory_oversubscription
//! ```

use flep_core::prelude::*;
use flep_gpu_sim::SwapManager;

const GIB: u64 = 1 << 30;

fn main() {
    let store = ModelStore::train(11);

    // A long scan (VA large) and periodic short aggregations (MM small)
    // from another tenant, equal priority: HPF preempts the scan for each
    // aggregation (shortest-remaining-time).
    let run = |working_set: u64| {
        let mut corun = CoRun::new(GpuConfig::k40(), Policy::hpf())
            // 1 GiB device, ~10 GB/s PCIe.
            .with_swap(SwapManager::new(GIB, 10_000.0, SimTime::from_us(10)))
            .job(
                JobSpec::new(
                    KernelProfile::of(&Benchmark::get(BenchmarkId::Va), InputClass::Large),
                    SimTime::ZERO,
                )
                .with_predicted(store.predict(&Benchmark::get(BenchmarkId::Va), InputClass::Large))
                .with_working_set(working_set)
                .with_seed(1),
            );
        for q in 0..3u64 {
            corun = corun.job(
                JobSpec::new(
                    KernelProfile::of(&Benchmark::get(BenchmarkId::Mm), InputClass::Small),
                    SimTime::from_ms(5) * (q + 1),
                )
                .with_predicted(store.predict(&Benchmark::get(BenchmarkId::Mm), InputClass::Small))
                .with_working_set(working_set)
                .with_seed(10 + q),
            );
        }
        corun.run()
    };

    println!("1 GiB device; scan tenant (VA large) + 3 aggregation queries (MM small)\n");
    for (label, ws) in [
        ("working sets fit (256 MiB each)", GIB / 4),
        ("oversubscribed (768 MiB each)", GIB * 3 / 4),
    ] {
        let result = run(ws);
        let stats = result.swap_stats.expect("swap enabled");
        let makespan = result
            .jobs
            .iter()
            .filter_map(|j| j.completed)
            .max()
            .expect("all jobs complete");
        println!("--- {label} ---");
        println!(
            "  makespan {makespan}   swap-ins {}   swap-outs {}   moved {} MiB",
            stats.swap_ins,
            stats.swap_outs,
            (stats.bytes_in + stats.bytes_out) >> 20
        );
        for j in &result.jobs {
            println!(
                "  {:<9} turnaround {:>12}  preemptions {}",
                j.name,
                j.turnaround().unwrap().to_string(),
                j.preemptions
            );
        }
        println!();
    }
    println!("oversubscription converts each preemption handoff into PCIe swap traffic —");
    println!("FLEP still enforces the schedule, but the swap time is charged to every launch.");
}
