//! Quickstart: compile a kernel into preemptable form, run it on the
//! simulated GPU, preempt it mid-flight, and resume it — verifying the
//! computation is unharmed.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flep_core::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The offline phase: transform a CUDA-like program with the FLEP
    //    compilation engine.
    // ------------------------------------------------------------------
    let source = r#"
__global__ void vec_add(float* a, float* b, float* c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
void launch_vec_add(float* a, float* b, float* c, int n) {
    vec_add<<<n / 256 + 1, 256>>>(a, b, c, n);
}
"#;
    let program = parse(source).expect("valid mini-CU");
    let transformed = transform(&program, TransformMode::Spatial).expect("transformable");

    println!("=== FLEP-transformed kernel (Fig. 4c form) ===\n");
    println!("{}", transformed.program);
    let meta = &transformed.kernels[0];
    println!(
        "kernel `{}` -> `{}` (task fn `{}`), {} blockIdx.x replacement(s)\n",
        meta.original, meta.persistent, meta.task_fn, meta.block_idx_replacements
    );

    // ------------------------------------------------------------------
    // 2. The online phase: run a real vector addition as a persistent
    //    grid, preempt it, resume it, and check the results.
    // ------------------------------------------------------------------
    let n = 200_000usize;
    let job = flep_workloads::VectorAddJob::new(n);
    let total_tasks = job.num_tasks();
    println!("=== Running vec_add over {n} elements ({total_tasks} tasks) ===");

    let cfg = GpuConfig::k40();
    let mut scenario = Scenario::new(cfg.clone());
    scenario.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "vec_add_flep",
            GridShape::Persistent {
                total_tasks,
                amortize: 5,
            },
            TaskCost::fixed(SimTime::from_us(20)),
        )
        .with_tag(1)
        .with_task_fn(job.task_fn()),
    );
    // Preempt the whole device at t = 40us (mid-run).
    scenario.signal_at(
        SimTime::from_us(40),
        1,
        PreemptSignal::YieldSms(cfg.num_sms),
    );
    let result = scenario.run();
    let record = &result.records[&1];
    let preemption = record.preemptions[0];
    println!(
        "preempted at {}: {} tasks done, {} remaining",
        preemption.at, preemption.tasks_done, preemption.remaining
    );

    // Resume: a fresh persistent launch carries the task offset.
    let mut resume = Scenario::new(cfg);
    resume.launch_at(
        SimTime::ZERO,
        LaunchDesc::new(
            "vec_add_flep_resume",
            GridShape::Persistent {
                total_tasks: preemption.remaining,
                amortize: 5,
            },
            TaskCost::fixed(SimTime::from_us(20)),
        )
        .with_tag(1)
        .with_first_task(preemption.tasks_done)
        .with_task_fn(job.task_fn()),
    );
    let resumed = resume.run();
    println!(
        "resumed and completed at {}",
        resumed.records[&1].completed_at.expect("completes")
    );

    // ------------------------------------------------------------------
    // 3. Verify: preempt + resume computed exactly the right answer.
    // ------------------------------------------------------------------
    assert_eq!(job.result(), job.expected());
    println!("\nresult verified: preemption + resume produced the exact vector sum");
}
