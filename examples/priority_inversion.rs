//! Priority inversion and its cure — the paper's motivating scenario
//! (§2.2, Figs. 1 and 8).
//!
//! A throughput-oriented batch job (NN on a large input) occupies the GPU;
//! a latency-critical query (SPMV on a small input) arrives from a
//! higher-priority process. Under plain MPS the query waits out the whole
//! batch kernel. Under FLEP/HPF the batch kernel is preempted, the query
//! runs, and the batch kernel resumes.
//!
//! Run with:
//! ```sh
//! cargo run --release --example priority_inversion
//! ```

use flep_core::prelude::*;

fn main() {
    let cfg = GpuConfig::k40();
    let store = ModelStore::train(42);

    let batch = Benchmark::get(BenchmarkId::Nn);
    let query = Benchmark::get(BenchmarkId::Spmv);

    let run = |policy: Policy| {
        CoRun::new(cfg.clone(), policy)
            .with_span_trace() // rendered as timelines below
            .job(
                JobSpec::new(KernelProfile::of(&batch, InputClass::Large), SimTime::ZERO)
                    .with_priority(1)
                    .with_predicted(store.predict(&batch, InputClass::Large))
                    .with_seed(1),
            )
            .job(
                JobSpec::new(
                    KernelProfile::of(&query, InputClass::Small),
                    SimTime::from_us(10),
                )
                .with_priority(2)
                .with_predicted(store.predict(&query, InputClass::Small))
                .with_seed(2),
            )
            .run()
    };

    println!(
        "scenario: {} (large, low prio) on the GPU; {} (small, high prio) arrives 10us later\n",
        batch.id, query.id
    );

    let mps = run(Policy::MpsBaseline);
    let flep = run(Policy::hpf());

    let report = |label: &str, r: &CoRunResult| {
        let q = &r.jobs[1];
        let b = &r.jobs[0];
        println!("{label}:");
        println!(
            "  query   : turnaround {:>12}  (waited {})",
            q.turnaround().unwrap().to_string(),
            q.waiting
        );
        println!(
            "  batch   : turnaround {:>12}  (preempted {} time(s))",
            b.turnaround().unwrap().to_string(),
            b.preemptions
        );
    };
    report("MPS baseline (no preemption)", &mps);
    report("FLEP / HPF", &flep);

    let speedup =
        mps.jobs[1].turnaround().unwrap().as_us() / flep.jobs[1].turnaround().unwrap().as_us();
    let batch_cost =
        flep.jobs[0].turnaround().unwrap().as_us() / mps.jobs[0].turnaround().unwrap().as_us();
    println!(
        "\nhigh-priority query speedup: {speedup:.1}X (paper reports up to 24.2X for this pair)"
    );
    println!("batch-kernel turnaround cost: {batch_cost:.3}X");

    // Show the preemption internals.
    let drains = &flep.jobs[0].drain_samples;
    println!(
        "preemption drain latency: {} (one amortized batch of L={} tasks + flag latency)",
        drains[0], batch.table1_amortize
    );

    println!("\ntimeline (FLEP/HPF):");
    print!("{}", flep_core::render_timeline(&flep, 90));
    println!("\ntimeline (MPS baseline):");
    print!("{}", flep_core::render_timeline(&mps, 90));
}
