/root/repo/target/release/examples/fig07_probe-ee1dbb6996477dd6.d: examples/fig07_probe.rs

/root/repo/target/release/examples/fig07_probe-ee1dbb6996477dd6: examples/fig07_probe.rs

examples/fig07_probe.rs:
