/root/repo/target/release/deps/fig15_spatial-c3deab7747b33045.d: crates/bench/src/bin/fig15_spatial.rs

/root/repo/target/release/deps/fig15_spatial-c3deab7747b33045: crates/bench/src/bin/fig15_spatial.rs

crates/bench/src/bin/fig15_spatial.rs:
