/root/repo/target/release/deps/flep_runtime-9fc365a7e4029284.d: crates/flep-runtime/src/lib.rs crates/flep-runtime/src/driver.rs crates/flep-runtime/src/job.rs crates/flep-runtime/src/world.rs

/root/repo/target/release/deps/libflep_runtime-9fc365a7e4029284.rlib: crates/flep-runtime/src/lib.rs crates/flep-runtime/src/driver.rs crates/flep-runtime/src/job.rs crates/flep-runtime/src/world.rs

/root/repo/target/release/deps/libflep_runtime-9fc365a7e4029284.rmeta: crates/flep-runtime/src/lib.rs crates/flep-runtime/src/driver.rs crates/flep-runtime/src/job.rs crates/flep-runtime/src/world.rs

crates/flep-runtime/src/lib.rs:
crates/flep-runtime/src/driver.rs:
crates/flep-runtime/src/job.rs:
crates/flep-runtime/src/world.rs:
