/root/repo/target/release/deps/fig10_antt-37c40a0402c375e0.d: crates/bench/src/bin/fig10_antt.rs

/root/repo/target/release/deps/fig10_antt-37c40a0402c375e0: crates/bench/src/bin/fig10_antt.rs

crates/bench/src/bin/fig10_antt.rs:
