/root/repo/target/release/deps/ablations-ad4341a866c38702.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-ad4341a866c38702: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
