/root/repo/target/release/deps/fig13_ffs_share-09ad4f903f9d0426.d: crates/bench/src/bin/fig13_ffs_share.rs

/root/repo/target/release/deps/fig13_ffs_share-09ad4f903f9d0426: crates/bench/src/bin/fig13_ffs_share.rs

crates/bench/src/bin/fig13_ffs_share.rs:
