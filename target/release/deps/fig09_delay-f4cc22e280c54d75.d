/root/repo/target/release/deps/fig09_delay-f4cc22e280c54d75.d: crates/bench/src/bin/fig09_delay.rs

/root/repo/target/release/deps/fig09_delay-f4cc22e280c54d75: crates/bench/src/bin/fig09_delay.rs

crates/bench/src/bin/fig09_delay.rs:
