/root/repo/target/release/deps/flep_sim_core-522639c358bdc5f3.d: crates/sim-core/src/lib.rs crates/sim-core/src/check.rs crates/sim-core/src/engine.rs crates/sim-core/src/event.rs crates/sim-core/src/json.rs crates/sim-core/src/rng.rs crates/sim-core/src/slab.rs crates/sim-core/src/time.rs crates/sim-core/src/trace.rs

/root/repo/target/release/deps/libflep_sim_core-522639c358bdc5f3.rlib: crates/sim-core/src/lib.rs crates/sim-core/src/check.rs crates/sim-core/src/engine.rs crates/sim-core/src/event.rs crates/sim-core/src/json.rs crates/sim-core/src/rng.rs crates/sim-core/src/slab.rs crates/sim-core/src/time.rs crates/sim-core/src/trace.rs

/root/repo/target/release/deps/libflep_sim_core-522639c358bdc5f3.rmeta: crates/sim-core/src/lib.rs crates/sim-core/src/check.rs crates/sim-core/src/engine.rs crates/sim-core/src/event.rs crates/sim-core/src/json.rs crates/sim-core/src/rng.rs crates/sim-core/src/slab.rs crates/sim-core/src/time.rs crates/sim-core/src/trace.rs

crates/sim-core/src/lib.rs:
crates/sim-core/src/check.rs:
crates/sim-core/src/engine.rs:
crates/sim-core/src/event.rs:
crates/sim-core/src/json.rs:
crates/sim-core/src/rng.rs:
crates/sim-core/src/slab.rs:
crates/sim-core/src/time.rs:
crates/sim-core/src/trace.rs:
