/root/repo/target/release/deps/flep_workloads-366b0d2ba6db1f16.d: crates/workloads/src/lib.rs crates/workloads/src/functional.rs crates/workloads/src/sources.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libflep_workloads-366b0d2ba6db1f16.rlib: crates/workloads/src/lib.rs crates/workloads/src/functional.rs crates/workloads/src/sources.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libflep_workloads-366b0d2ba6db1f16.rmeta: crates/workloads/src/lib.rs crates/workloads/src/functional.rs crates/workloads/src/sources.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/functional.rs:
crates/workloads/src/sources.rs:
crates/workloads/src/spec.rs:
