/root/repo/target/release/deps/fig11_stp-d1c6c4fe548441a5.d: crates/bench/src/bin/fig11_stp.rs

/root/repo/target/release/deps/fig11_stp-d1c6c4fe548441a5: crates/bench/src/bin/fig11_stp.rs

crates/bench/src/bin/fig11_stp.rs:
