/root/repo/target/release/deps/fig12_three_kernel-f406b514e4bcf3bc.d: crates/bench/src/bin/fig12_three_kernel.rs

/root/repo/target/release/deps/fig12_three_kernel-f406b514e4bcf3bc: crates/bench/src/bin/fig12_three_kernel.rs

crates/bench/src/bin/fig12_three_kernel.rs:
