/root/repo/target/release/deps/fig13_ffs_share-7572a35a0e4d8806.d: crates/bench/src/bin/fig13_ffs_share.rs

/root/repo/target/release/deps/fig13_ffs_share-7572a35a0e4d8806: crates/bench/src/bin/fig13_ffs_share.rs

crates/bench/src/bin/fig13_ffs_share.rs:
