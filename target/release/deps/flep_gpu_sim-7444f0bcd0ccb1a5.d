/root/repo/target/release/deps/flep_gpu_sim-7444f0bcd0ccb1a5.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/grid.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/scenario.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/swap.rs

/root/repo/target/release/deps/libflep_gpu_sim-7444f0bcd0ccb1a5.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/grid.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/scenario.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/swap.rs

/root/repo/target/release/deps/libflep_gpu_sim-7444f0bcd0ccb1a5.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/grid.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/scenario.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/swap.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/grid.rs:
crates/gpu-sim/src/memory.rs:
crates/gpu-sim/src/scenario.rs:
crates/gpu-sim/src/sm.rs:
crates/gpu-sim/src/swap.rs:
