/root/repo/target/release/deps/flep_perfmodel-fe88f98a38ae8f27.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/linalg.rs crates/perfmodel/src/profiler.rs crates/perfmodel/src/regression.rs

/root/repo/target/release/deps/libflep_perfmodel-fe88f98a38ae8f27.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/linalg.rs crates/perfmodel/src/profiler.rs crates/perfmodel/src/regression.rs

/root/repo/target/release/deps/libflep_perfmodel-fe88f98a38ae8f27.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/linalg.rs crates/perfmodel/src/profiler.rs crates/perfmodel/src/regression.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/linalg.rs:
crates/perfmodel/src/profiler.rs:
crates/perfmodel/src/regression.rs:
