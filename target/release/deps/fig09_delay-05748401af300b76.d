/root/repo/target/release/deps/fig09_delay-05748401af300b76.d: crates/bench/src/bin/fig09_delay.rs

/root/repo/target/release/deps/fig09_delay-05748401af300b76: crates/bench/src/bin/fig09_delay.rs

crates/bench/src/bin/fig09_delay.rs:
