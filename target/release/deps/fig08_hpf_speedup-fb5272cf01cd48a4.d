/root/repo/target/release/deps/fig08_hpf_speedup-fb5272cf01cd48a4.d: crates/bench/src/bin/fig08_hpf_speedup.rs

/root/repo/target/release/deps/fig08_hpf_speedup-fb5272cf01cd48a4: crates/bench/src/bin/fig08_hpf_speedup.rs

crates/bench/src/bin/fig08_hpf_speedup.rs:
