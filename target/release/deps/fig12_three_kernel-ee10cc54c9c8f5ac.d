/root/repo/target/release/deps/fig12_three_kernel-ee10cc54c9c8f5ac.d: crates/bench/src/bin/fig12_three_kernel.rs

/root/repo/target/release/deps/fig12_three_kernel-ee10cc54c9c8f5ac: crates/bench/src/bin/fig12_three_kernel.rs

crates/bench/src/bin/fig12_three_kernel.rs:
