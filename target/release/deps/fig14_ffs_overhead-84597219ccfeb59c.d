/root/repo/target/release/deps/fig14_ffs_overhead-84597219ccfeb59c.d: crates/bench/src/bin/fig14_ffs_overhead.rs

/root/repo/target/release/deps/fig14_ffs_overhead-84597219ccfeb59c: crates/bench/src/bin/fig14_ffs_overhead.rs

crates/bench/src/bin/fig14_ffs_overhead.rs:
