/root/repo/target/release/deps/fig01_slowdown-5073ebd8a6dab56d.d: crates/bench/src/bin/fig01_slowdown.rs

/root/repo/target/release/deps/fig01_slowdown-5073ebd8a6dab56d: crates/bench/src/bin/fig01_slowdown.rs

crates/bench/src/bin/fig01_slowdown.rs:
