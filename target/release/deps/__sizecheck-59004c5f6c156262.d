/root/repo/target/release/deps/__sizecheck-59004c5f6c156262.d: crates/bench/src/bin/__sizecheck.rs

/root/repo/target/release/deps/__sizecheck-59004c5f6c156262: crates/bench/src/bin/__sizecheck.rs

crates/bench/src/bin/__sizecheck.rs:
