/root/repo/target/release/deps/micro-364b04d8e10923cd.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-364b04d8e10923cd: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
