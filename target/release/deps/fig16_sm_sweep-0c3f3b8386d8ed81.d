/root/repo/target/release/deps/fig16_sm_sweep-0c3f3b8386d8ed81.d: crates/bench/src/bin/fig16_sm_sweep.rs

/root/repo/target/release/deps/fig16_sm_sweep-0c3f3b8386d8ed81: crates/bench/src/bin/fig16_sm_sweep.rs

crates/bench/src/bin/fig16_sm_sweep.rs:
