/root/repo/target/release/deps/flep_metrics-ee2a84fd2d5c0f83.d: crates/metrics/src/lib.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libflep_metrics-ee2a84fd2d5c0f83.rlib: crates/metrics/src/lib.rs crates/metrics/src/stats.rs

/root/repo/target/release/deps/libflep_metrics-ee2a84fd2d5c0f83.rmeta: crates/metrics/src/lib.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/stats.rs:
