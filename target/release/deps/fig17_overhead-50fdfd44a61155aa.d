/root/repo/target/release/deps/fig17_overhead-50fdfd44a61155aa.d: crates/bench/src/bin/fig17_overhead.rs

/root/repo/target/release/deps/fig17_overhead-50fdfd44a61155aa: crates/bench/src/bin/fig17_overhead.rs

crates/bench/src/bin/fig17_overhead.rs:
