/root/repo/target/release/deps/flep_compile-881404ea1d68348e.d: crates/flep-compile/src/lib.rs crates/flep-compile/src/passes.rs crates/flep-compile/src/slicing.rs crates/flep-compile/src/tuner.rs

/root/repo/target/release/deps/libflep_compile-881404ea1d68348e.rlib: crates/flep-compile/src/lib.rs crates/flep-compile/src/passes.rs crates/flep-compile/src/slicing.rs crates/flep-compile/src/tuner.rs

/root/repo/target/release/deps/libflep_compile-881404ea1d68348e.rmeta: crates/flep-compile/src/lib.rs crates/flep-compile/src/passes.rs crates/flep-compile/src/slicing.rs crates/flep-compile/src/tuner.rs

crates/flep-compile/src/lib.rs:
crates/flep-compile/src/passes.rs:
crates/flep-compile/src/slicing.rs:
crates/flep-compile/src/tuner.rs:
