/root/repo/target/release/deps/fig15_spatial-ffda7f3ad195b4c4.d: crates/bench/src/bin/fig15_spatial.rs

/root/repo/target/release/deps/fig15_spatial-ffda7f3ad195b4c4: crates/bench/src/bin/fig15_spatial.rs

crates/bench/src/bin/fig15_spatial.rs:
