/root/repo/target/release/deps/flep_bench-16bd6f9aa2440a55.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/flep_bench-16bd6f9aa2440a55: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
