/root/repo/target/release/deps/ablations-d3d335b81e9b42c9.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-d3d335b81e9b42c9: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
