/root/repo/target/release/deps/fig01_slowdown-c3936f6a15702290.d: crates/bench/src/bin/fig01_slowdown.rs

/root/repo/target/release/deps/fig01_slowdown-c3936f6a15702290: crates/bench/src/bin/fig01_slowdown.rs

crates/bench/src/bin/fig01_slowdown.rs:
