/root/repo/target/release/deps/sensitivity-b1f7803adc52cbb2.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-b1f7803adc52cbb2: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
