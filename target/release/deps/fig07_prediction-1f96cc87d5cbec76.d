/root/repo/target/release/deps/fig07_prediction-1f96cc87d5cbec76.d: crates/bench/src/bin/fig07_prediction.rs

/root/repo/target/release/deps/fig07_prediction-1f96cc87d5cbec76: crates/bench/src/bin/fig07_prediction.rs

crates/bench/src/bin/fig07_prediction.rs:
