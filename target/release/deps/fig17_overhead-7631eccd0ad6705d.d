/root/repo/target/release/deps/fig17_overhead-7631eccd0ad6705d.d: crates/bench/src/bin/fig17_overhead.rs

/root/repo/target/release/deps/fig17_overhead-7631eccd0ad6705d: crates/bench/src/bin/fig17_overhead.rs

crates/bench/src/bin/fig17_overhead.rs:
