/root/repo/target/release/deps/flep_bench-ce977d9c63f94a77.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libflep_bench-ce977d9c63f94a77.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libflep_bench-ce977d9c63f94a77.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
