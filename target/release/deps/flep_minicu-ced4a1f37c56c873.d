/root/repo/target/release/deps/flep_minicu-ced4a1f37c56c873.d: crates/minicu/src/lib.rs crates/minicu/src/ast.rs crates/minicu/src/parser.rs crates/minicu/src/resources.rs crates/minicu/src/sema.rs crates/minicu/src/token.rs crates/minicu/src/typeck.rs

/root/repo/target/release/deps/libflep_minicu-ced4a1f37c56c873.rlib: crates/minicu/src/lib.rs crates/minicu/src/ast.rs crates/minicu/src/parser.rs crates/minicu/src/resources.rs crates/minicu/src/sema.rs crates/minicu/src/token.rs crates/minicu/src/typeck.rs

/root/repo/target/release/deps/libflep_minicu-ced4a1f37c56c873.rmeta: crates/minicu/src/lib.rs crates/minicu/src/ast.rs crates/minicu/src/parser.rs crates/minicu/src/resources.rs crates/minicu/src/sema.rs crates/minicu/src/token.rs crates/minicu/src/typeck.rs

crates/minicu/src/lib.rs:
crates/minicu/src/ast.rs:
crates/minicu/src/parser.rs:
crates/minicu/src/resources.rs:
crates/minicu/src/sema.rs:
crates/minicu/src/token.rs:
crates/minicu/src/typeck.rs:
