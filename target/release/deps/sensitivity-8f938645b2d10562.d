/root/repo/target/release/deps/sensitivity-8f938645b2d10562.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/release/deps/sensitivity-8f938645b2d10562: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
