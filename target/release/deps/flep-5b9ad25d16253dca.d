/root/repo/target/release/deps/flep-5b9ad25d16253dca.d: crates/flep-core/src/bin/flep.rs

/root/repo/target/release/deps/flep-5b9ad25d16253dca: crates/flep-core/src/bin/flep.rs

crates/flep-core/src/bin/flep.rs:
