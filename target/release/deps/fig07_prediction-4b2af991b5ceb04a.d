/root/repo/target/release/deps/fig07_prediction-4b2af991b5ceb04a.d: crates/bench/src/bin/fig07_prediction.rs

/root/repo/target/release/deps/fig07_prediction-4b2af991b5ceb04a: crates/bench/src/bin/fig07_prediction.rs

crates/bench/src/bin/fig07_prediction.rs:
