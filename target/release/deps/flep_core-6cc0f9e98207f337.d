/root/repo/target/release/deps/flep_core-6cc0f9e98207f337.d: crates/flep-core/src/lib.rs crates/flep-core/src/experiments.rs crates/flep-core/src/models.rs crates/flep-core/src/runner.rs crates/flep-core/src/timeline.rs

/root/repo/target/release/deps/libflep_core-6cc0f9e98207f337.rlib: crates/flep-core/src/lib.rs crates/flep-core/src/experiments.rs crates/flep-core/src/models.rs crates/flep-core/src/runner.rs crates/flep-core/src/timeline.rs

/root/repo/target/release/deps/libflep_core-6cc0f9e98207f337.rmeta: crates/flep-core/src/lib.rs crates/flep-core/src/experiments.rs crates/flep-core/src/models.rs crates/flep-core/src/runner.rs crates/flep-core/src/timeline.rs

crates/flep-core/src/lib.rs:
crates/flep-core/src/experiments.rs:
crates/flep-core/src/models.rs:
crates/flep-core/src/runner.rs:
crates/flep-core/src/timeline.rs:
