/root/repo/target/release/deps/fig16_sm_sweep-3637ebb0816c69ef.d: crates/bench/src/bin/fig16_sm_sweep.rs

/root/repo/target/release/deps/fig16_sm_sweep-3637ebb0816c69ef: crates/bench/src/bin/fig16_sm_sweep.rs

crates/bench/src/bin/fig16_sm_sweep.rs:
