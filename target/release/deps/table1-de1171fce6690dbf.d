/root/repo/target/release/deps/table1-de1171fce6690dbf.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-de1171fce6690dbf: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
