/root/repo/target/release/deps/fig14_ffs_overhead-576fac899f1f2e70.d: crates/bench/src/bin/fig14_ffs_overhead.rs

/root/repo/target/release/deps/fig14_ffs_overhead-576fac899f1f2e70: crates/bench/src/bin/fig14_ffs_overhead.rs

crates/bench/src/bin/fig14_ffs_overhead.rs:
