/root/repo/target/release/deps/fig08_hpf_speedup-c0960eafd8508a80.d: crates/bench/src/bin/fig08_hpf_speedup.rs

/root/repo/target/release/deps/fig08_hpf_speedup-c0960eafd8508a80: crates/bench/src/bin/fig08_hpf_speedup.rs

crates/bench/src/bin/fig08_hpf_speedup.rs:
