/root/repo/target/release/deps/fig10_antt-964225fce6be898e.d: crates/bench/src/bin/fig10_antt.rs

/root/repo/target/release/deps/fig10_antt-964225fce6be898e: crates/bench/src/bin/fig10_antt.rs

crates/bench/src/bin/fig10_antt.rs:
