/root/repo/target/release/deps/flep_suite-f9da9384695b7042.d: src/lib.rs

/root/repo/target/release/deps/libflep_suite-f9da9384695b7042.rlib: src/lib.rs

/root/repo/target/release/deps/libflep_suite-f9da9384695b7042.rmeta: src/lib.rs

src/lib.rs:
