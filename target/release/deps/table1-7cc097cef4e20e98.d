/root/repo/target/release/deps/table1-7cc097cef4e20e98.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-7cc097cef4e20e98: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
