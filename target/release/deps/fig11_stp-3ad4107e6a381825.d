/root/repo/target/release/deps/fig11_stp-3ad4107e6a381825.d: crates/bench/src/bin/fig11_stp.rs

/root/repo/target/release/deps/fig11_stp-3ad4107e6a381825: crates/bench/src/bin/fig11_stp.rs

crates/bench/src/bin/fig11_stp.rs:
