/root/repo/target/debug/deps/props-73e50508f1de1c2e.d: crates/perfmodel/tests/props.rs

/root/repo/target/debug/deps/props-73e50508f1de1c2e: crates/perfmodel/tests/props.rs

crates/perfmodel/tests/props.rs:
