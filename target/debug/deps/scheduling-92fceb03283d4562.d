/root/repo/target/debug/deps/scheduling-92fceb03283d4562.d: crates/flep-runtime/tests/scheduling.rs

/root/repo/target/debug/deps/scheduling-92fceb03283d4562: crates/flep-runtime/tests/scheduling.rs

crates/flep-runtime/tests/scheduling.rs:
