/root/repo/target/debug/deps/props-18064d706ebd5a74.d: crates/minicu/tests/props.rs

/root/repo/target/debug/deps/props-18064d706ebd5a74: crates/minicu/tests/props.rs

crates/minicu/tests/props.rs:
