/root/repo/target/debug/deps/fig11_stp-08d5134f929c1b53.d: crates/bench/src/bin/fig11_stp.rs

/root/repo/target/debug/deps/fig11_stp-08d5134f929c1b53: crates/bench/src/bin/fig11_stp.rs

crates/bench/src/bin/fig11_stp.rs:
