/root/repo/target/debug/deps/experiment_shapes-a121abb14bae47da.d: tests/experiment_shapes.rs

/root/repo/target/debug/deps/experiment_shapes-a121abb14bae47da: tests/experiment_shapes.rs

tests/experiment_shapes.rs:
