/root/repo/target/debug/deps/table1-55f5bea538362300.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-55f5bea538362300: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
