/root/repo/target/debug/deps/ablations-69b3c4c3d642337d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-69b3c4c3d642337d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
