/root/repo/target/debug/deps/flep_metrics-b436b81f04586cbc.d: crates/metrics/src/lib.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libflep_metrics-b436b81f04586cbc.rlib: crates/metrics/src/lib.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/libflep_metrics-b436b81f04586cbc.rmeta: crates/metrics/src/lib.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/stats.rs:
