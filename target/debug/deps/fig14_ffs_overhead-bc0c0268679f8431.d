/root/repo/target/debug/deps/fig14_ffs_overhead-bc0c0268679f8431.d: crates/bench/src/bin/fig14_ffs_overhead.rs

/root/repo/target/debug/deps/fig14_ffs_overhead-bc0c0268679f8431: crates/bench/src/bin/fig14_ffs_overhead.rs

crates/bench/src/bin/fig14_ffs_overhead.rs:
