/root/repo/target/debug/deps/fig16_sm_sweep-556594f653a9749d.d: crates/bench/src/bin/fig16_sm_sweep.rs

/root/repo/target/debug/deps/fig16_sm_sweep-556594f653a9749d: crates/bench/src/bin/fig16_sm_sweep.rs

crates/bench/src/bin/fig16_sm_sweep.rs:
