/root/repo/target/debug/deps/fig01_slowdown-087d70044818a566.d: crates/bench/src/bin/fig01_slowdown.rs

/root/repo/target/debug/deps/fig01_slowdown-087d70044818a566: crates/bench/src/bin/fig01_slowdown.rs

crates/bench/src/bin/fig01_slowdown.rs:
