/root/repo/target/debug/deps/fig14_ffs_overhead-482c37c45f108c40.d: crates/bench/src/bin/fig14_ffs_overhead.rs

/root/repo/target/debug/deps/fig14_ffs_overhead-482c37c45f108c40: crates/bench/src/bin/fig14_ffs_overhead.rs

crates/bench/src/bin/fig14_ffs_overhead.rs:
