/root/repo/target/debug/deps/fig09_delay-50bfef5453cce580.d: crates/bench/src/bin/fig09_delay.rs

/root/repo/target/debug/deps/fig09_delay-50bfef5453cce580: crates/bench/src/bin/fig09_delay.rs

crates/bench/src/bin/fig09_delay.rs:
