/root/repo/target/debug/deps/flep_core-725448992f1e66e1.d: crates/flep-core/src/lib.rs crates/flep-core/src/experiments.rs crates/flep-core/src/models.rs crates/flep-core/src/runner.rs crates/flep-core/src/timeline.rs

/root/repo/target/debug/deps/flep_core-725448992f1e66e1: crates/flep-core/src/lib.rs crates/flep-core/src/experiments.rs crates/flep-core/src/models.rs crates/flep-core/src/runner.rs crates/flep-core/src/timeline.rs

crates/flep-core/src/lib.rs:
crates/flep-core/src/experiments.rs:
crates/flep-core/src/models.rs:
crates/flep-core/src/runner.rs:
crates/flep-core/src/timeline.rs:
