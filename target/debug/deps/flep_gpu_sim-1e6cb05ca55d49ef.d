/root/repo/target/debug/deps/flep_gpu_sim-1e6cb05ca55d49ef.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/grid.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/scenario.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/swap.rs

/root/repo/target/debug/deps/libflep_gpu_sim-1e6cb05ca55d49ef.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/grid.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/scenario.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/swap.rs

/root/repo/target/debug/deps/libflep_gpu_sim-1e6cb05ca55d49ef.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/grid.rs crates/gpu-sim/src/memory.rs crates/gpu-sim/src/scenario.rs crates/gpu-sim/src/sm.rs crates/gpu-sim/src/swap.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/grid.rs:
crates/gpu-sim/src/memory.rs:
crates/gpu-sim/src/scenario.rs:
crates/gpu-sim/src/sm.rs:
crates/gpu-sim/src/swap.rs:
