/root/repo/target/debug/deps/fig12_three_kernel-2186b5cdb1029b90.d: crates/bench/src/bin/fig12_three_kernel.rs

/root/repo/target/debug/deps/fig12_three_kernel-2186b5cdb1029b90: crates/bench/src/bin/fig12_three_kernel.rs

crates/bench/src/bin/fig12_three_kernel.rs:
