/root/repo/target/debug/deps/parallel_determinism-d3168d12b2482141.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-d3168d12b2482141: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
