/root/repo/target/debug/deps/flep_minicu-b6e665263045778a.d: crates/minicu/src/lib.rs crates/minicu/src/ast.rs crates/minicu/src/parser.rs crates/minicu/src/resources.rs crates/minicu/src/sema.rs crates/minicu/src/token.rs crates/minicu/src/typeck.rs

/root/repo/target/debug/deps/flep_minicu-b6e665263045778a: crates/minicu/src/lib.rs crates/minicu/src/ast.rs crates/minicu/src/parser.rs crates/minicu/src/resources.rs crates/minicu/src/sema.rs crates/minicu/src/token.rs crates/minicu/src/typeck.rs

crates/minicu/src/lib.rs:
crates/minicu/src/ast.rs:
crates/minicu/src/parser.rs:
crates/minicu/src/resources.rs:
crates/minicu/src/sema.rs:
crates/minicu/src/token.rs:
crates/minicu/src/typeck.rs:
