/root/repo/target/debug/deps/flep_perfmodel-80bf85b8ab010500.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/linalg.rs crates/perfmodel/src/profiler.rs crates/perfmodel/src/regression.rs

/root/repo/target/debug/deps/flep_perfmodel-80bf85b8ab010500: crates/perfmodel/src/lib.rs crates/perfmodel/src/linalg.rs crates/perfmodel/src/profiler.rs crates/perfmodel/src/regression.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/linalg.rs:
crates/perfmodel/src/profiler.rs:
crates/perfmodel/src/regression.rs:
