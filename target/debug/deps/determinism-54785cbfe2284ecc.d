/root/repo/target/debug/deps/determinism-54785cbfe2284ecc.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-54785cbfe2284ecc: tests/determinism.rs

tests/determinism.rs:
