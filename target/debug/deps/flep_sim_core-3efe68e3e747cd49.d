/root/repo/target/debug/deps/flep_sim_core-3efe68e3e747cd49.d: crates/sim-core/src/lib.rs crates/sim-core/src/check.rs crates/sim-core/src/engine.rs crates/sim-core/src/event.rs crates/sim-core/src/json.rs crates/sim-core/src/rng.rs crates/sim-core/src/slab.rs crates/sim-core/src/time.rs crates/sim-core/src/trace.rs

/root/repo/target/debug/deps/flep_sim_core-3efe68e3e747cd49: crates/sim-core/src/lib.rs crates/sim-core/src/check.rs crates/sim-core/src/engine.rs crates/sim-core/src/event.rs crates/sim-core/src/json.rs crates/sim-core/src/rng.rs crates/sim-core/src/slab.rs crates/sim-core/src/time.rs crates/sim-core/src/trace.rs

crates/sim-core/src/lib.rs:
crates/sim-core/src/check.rs:
crates/sim-core/src/engine.rs:
crates/sim-core/src/event.rs:
crates/sim-core/src/json.rs:
crates/sim-core/src/rng.rs:
crates/sim-core/src/slab.rs:
crates/sim-core/src/time.rs:
crates/sim-core/src/trace.rs:
