/root/repo/target/debug/deps/fig17_overhead-fbc2f0ad9951edb1.d: crates/bench/src/bin/fig17_overhead.rs

/root/repo/target/debug/deps/fig17_overhead-fbc2f0ad9951edb1: crates/bench/src/bin/fig17_overhead.rs

crates/bench/src/bin/fig17_overhead.rs:
