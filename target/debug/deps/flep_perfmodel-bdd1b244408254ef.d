/root/repo/target/debug/deps/flep_perfmodel-bdd1b244408254ef.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/linalg.rs crates/perfmodel/src/profiler.rs crates/perfmodel/src/regression.rs

/root/repo/target/debug/deps/libflep_perfmodel-bdd1b244408254ef.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/linalg.rs crates/perfmodel/src/profiler.rs crates/perfmodel/src/regression.rs

/root/repo/target/debug/deps/libflep_perfmodel-bdd1b244408254ef.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/linalg.rs crates/perfmodel/src/profiler.rs crates/perfmodel/src/regression.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/linalg.rs:
crates/perfmodel/src/profiler.rs:
crates/perfmodel/src/regression.rs:
