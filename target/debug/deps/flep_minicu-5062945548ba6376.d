/root/repo/target/debug/deps/flep_minicu-5062945548ba6376.d: crates/minicu/src/lib.rs crates/minicu/src/ast.rs crates/minicu/src/parser.rs crates/minicu/src/resources.rs crates/minicu/src/sema.rs crates/minicu/src/token.rs crates/minicu/src/typeck.rs

/root/repo/target/debug/deps/libflep_minicu-5062945548ba6376.rlib: crates/minicu/src/lib.rs crates/minicu/src/ast.rs crates/minicu/src/parser.rs crates/minicu/src/resources.rs crates/minicu/src/sema.rs crates/minicu/src/token.rs crates/minicu/src/typeck.rs

/root/repo/target/debug/deps/libflep_minicu-5062945548ba6376.rmeta: crates/minicu/src/lib.rs crates/minicu/src/ast.rs crates/minicu/src/parser.rs crates/minicu/src/resources.rs crates/minicu/src/sema.rs crates/minicu/src/token.rs crates/minicu/src/typeck.rs

crates/minicu/src/lib.rs:
crates/minicu/src/ast.rs:
crates/minicu/src/parser.rs:
crates/minicu/src/resources.rs:
crates/minicu/src/sema.rs:
crates/minicu/src/token.rs:
crates/minicu/src/typeck.rs:
