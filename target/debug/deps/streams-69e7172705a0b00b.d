/root/repo/target/debug/deps/streams-69e7172705a0b00b.d: crates/gpu-sim/tests/streams.rs

/root/repo/target/debug/deps/streams-69e7172705a0b00b: crates/gpu-sim/tests/streams.rs

crates/gpu-sim/tests/streams.rs:
