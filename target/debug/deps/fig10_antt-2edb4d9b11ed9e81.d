/root/repo/target/debug/deps/fig10_antt-2edb4d9b11ed9e81.d: crates/bench/src/bin/fig10_antt.rs

/root/repo/target/debug/deps/fig10_antt-2edb4d9b11ed9e81: crates/bench/src/bin/fig10_antt.rs

crates/bench/src/bin/fig10_antt.rs:
