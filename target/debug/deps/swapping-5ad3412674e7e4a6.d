/root/repo/target/debug/deps/swapping-5ad3412674e7e4a6.d: crates/flep-runtime/tests/swapping.rs

/root/repo/target/debug/deps/swapping-5ad3412674e7e4a6: crates/flep-runtime/tests/swapping.rs

crates/flep-runtime/tests/swapping.rs:
