/root/repo/target/debug/deps/fig11_stp-b70bc1c53dbcfc50.d: crates/bench/src/bin/fig11_stp.rs

/root/repo/target/debug/deps/fig11_stp-b70bc1c53dbcfc50: crates/bench/src/bin/fig11_stp.rs

crates/bench/src/bin/fig11_stp.rs:
