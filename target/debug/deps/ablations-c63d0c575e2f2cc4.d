/root/repo/target/debug/deps/ablations-c63d0c575e2f2cc4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-c63d0c575e2f2cc4: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
