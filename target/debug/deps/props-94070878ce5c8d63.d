/root/repo/target/debug/deps/props-94070878ce5c8d63.d: crates/flep-runtime/tests/props.rs

/root/repo/target/debug/deps/props-94070878ce5c8d63: crates/flep-runtime/tests/props.rs

crates/flep-runtime/tests/props.rs:
