/root/repo/target/debug/deps/flep_workloads-a9907ce7dba5bef1.d: crates/workloads/src/lib.rs crates/workloads/src/functional.rs crates/workloads/src/sources.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/flep_workloads-a9907ce7dba5bef1: crates/workloads/src/lib.rs crates/workloads/src/functional.rs crates/workloads/src/sources.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/functional.rs:
crates/workloads/src/sources.rs:
crates/workloads/src/spec.rs:
