/root/repo/target/debug/deps/fig10_antt-390d022aac463a95.d: crates/bench/src/bin/fig10_antt.rs

/root/repo/target/debug/deps/fig10_antt-390d022aac463a95: crates/bench/src/bin/fig10_antt.rs

crates/bench/src/bin/fig10_antt.rs:
