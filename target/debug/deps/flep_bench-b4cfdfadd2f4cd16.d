/root/repo/target/debug/deps/flep_bench-b4cfdfadd2f4cd16.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libflep_bench-b4cfdfadd2f4cd16.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libflep_bench-b4cfdfadd2f4cd16.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
