/root/repo/target/debug/deps/fig09_delay-d7d8f8414e4aa1be.d: crates/bench/src/bin/fig09_delay.rs

/root/repo/target/debug/deps/fig09_delay-d7d8f8414e4aa1be: crates/bench/src/bin/fig09_delay.rs

crates/bench/src/bin/fig09_delay.rs:
