/root/repo/target/debug/deps/fig15_spatial-8c54a7cf7b6a4036.d: crates/bench/src/bin/fig15_spatial.rs

/root/repo/target/debug/deps/fig15_spatial-8c54a7cf7b6a4036: crates/bench/src/bin/fig15_spatial.rs

crates/bench/src/bin/fig15_spatial.rs:
