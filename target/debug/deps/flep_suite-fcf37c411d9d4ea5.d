/root/repo/target/debug/deps/flep_suite-fcf37c411d9d4ea5.d: src/lib.rs

/root/repo/target/debug/deps/libflep_suite-fcf37c411d9d4ea5.rlib: src/lib.rs

/root/repo/target/debug/deps/libflep_suite-fcf37c411d9d4ea5.rmeta: src/lib.rs

src/lib.rs:
