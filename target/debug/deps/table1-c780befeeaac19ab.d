/root/repo/target/debug/deps/table1-c780befeeaac19ab.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c780befeeaac19ab: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
