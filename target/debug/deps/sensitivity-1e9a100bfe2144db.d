/root/repo/target/debug/deps/sensitivity-1e9a100bfe2144db.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-1e9a100bfe2144db: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
