/root/repo/target/debug/deps/fig13_ffs_share-f6c4b006758771b8.d: crates/bench/src/bin/fig13_ffs_share.rs

/root/repo/target/debug/deps/fig13_ffs_share-f6c4b006758771b8: crates/bench/src/bin/fig13_ffs_share.rs

crates/bench/src/bin/fig13_ffs_share.rs:
