/root/repo/target/debug/deps/flep_compile-3309ee94fffeca82.d: crates/flep-compile/src/lib.rs crates/flep-compile/src/passes.rs crates/flep-compile/src/slicing.rs crates/flep-compile/src/tuner.rs

/root/repo/target/debug/deps/flep_compile-3309ee94fffeca82: crates/flep-compile/src/lib.rs crates/flep-compile/src/passes.rs crates/flep-compile/src/slicing.rs crates/flep-compile/src/tuner.rs

crates/flep-compile/src/lib.rs:
crates/flep-compile/src/passes.rs:
crates/flep-compile/src/slicing.rs:
crates/flep-compile/src/tuner.rs:
