/root/repo/target/debug/deps/flep_compile-a905b7a5520e65ba.d: crates/flep-compile/src/lib.rs crates/flep-compile/src/passes.rs crates/flep-compile/src/slicing.rs crates/flep-compile/src/tuner.rs

/root/repo/target/debug/deps/libflep_compile-a905b7a5520e65ba.rlib: crates/flep-compile/src/lib.rs crates/flep-compile/src/passes.rs crates/flep-compile/src/slicing.rs crates/flep-compile/src/tuner.rs

/root/repo/target/debug/deps/libflep_compile-a905b7a5520e65ba.rmeta: crates/flep-compile/src/lib.rs crates/flep-compile/src/passes.rs crates/flep-compile/src/slicing.rs crates/flep-compile/src/tuner.rs

crates/flep-compile/src/lib.rs:
crates/flep-compile/src/passes.rs:
crates/flep-compile/src/slicing.rs:
crates/flep-compile/src/tuner.rs:
