/root/repo/target/debug/deps/flep_suite-3b3606b02cb5dbc6.d: src/lib.rs

/root/repo/target/debug/deps/flep_suite-3b3606b02cb5dbc6: src/lib.rs

src/lib.rs:
