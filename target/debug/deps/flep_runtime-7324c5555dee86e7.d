/root/repo/target/debug/deps/flep_runtime-7324c5555dee86e7.d: crates/flep-runtime/src/lib.rs crates/flep-runtime/src/driver.rs crates/flep-runtime/src/job.rs crates/flep-runtime/src/world.rs

/root/repo/target/debug/deps/flep_runtime-7324c5555dee86e7: crates/flep-runtime/src/lib.rs crates/flep-runtime/src/driver.rs crates/flep-runtime/src/job.rs crates/flep-runtime/src/world.rs

crates/flep-runtime/src/lib.rs:
crates/flep-runtime/src/driver.rs:
crates/flep-runtime/src/job.rs:
crates/flep-runtime/src/world.rs:
