/root/repo/target/debug/deps/fig08_hpf_speedup-c30e3ea8e07cd02d.d: crates/bench/src/bin/fig08_hpf_speedup.rs

/root/repo/target/debug/deps/fig08_hpf_speedup-c30e3ea8e07cd02d: crates/bench/src/bin/fig08_hpf_speedup.rs

crates/bench/src/bin/fig08_hpf_speedup.rs:
