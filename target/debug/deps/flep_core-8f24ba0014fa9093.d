/root/repo/target/debug/deps/flep_core-8f24ba0014fa9093.d: crates/flep-core/src/lib.rs crates/flep-core/src/experiments.rs crates/flep-core/src/models.rs crates/flep-core/src/runner.rs crates/flep-core/src/timeline.rs

/root/repo/target/debug/deps/libflep_core-8f24ba0014fa9093.rlib: crates/flep-core/src/lib.rs crates/flep-core/src/experiments.rs crates/flep-core/src/models.rs crates/flep-core/src/runner.rs crates/flep-core/src/timeline.rs

/root/repo/target/debug/deps/libflep_core-8f24ba0014fa9093.rmeta: crates/flep-core/src/lib.rs crates/flep-core/src/experiments.rs crates/flep-core/src/models.rs crates/flep-core/src/runner.rs crates/flep-core/src/timeline.rs

crates/flep-core/src/lib.rs:
crates/flep-core/src/experiments.rs:
crates/flep-core/src/models.rs:
crates/flep-core/src/runner.rs:
crates/flep-core/src/timeline.rs:
