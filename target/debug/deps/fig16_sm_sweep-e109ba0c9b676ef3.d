/root/repo/target/debug/deps/fig16_sm_sweep-e109ba0c9b676ef3.d: crates/bench/src/bin/fig16_sm_sweep.rs

/root/repo/target/debug/deps/fig16_sm_sweep-e109ba0c9b676ef3: crates/bench/src/bin/fig16_sm_sweep.rs

crates/bench/src/bin/fig16_sm_sweep.rs:
