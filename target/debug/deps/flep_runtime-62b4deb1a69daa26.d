/root/repo/target/debug/deps/flep_runtime-62b4deb1a69daa26.d: crates/flep-runtime/src/lib.rs crates/flep-runtime/src/driver.rs crates/flep-runtime/src/job.rs crates/flep-runtime/src/world.rs

/root/repo/target/debug/deps/libflep_runtime-62b4deb1a69daa26.rlib: crates/flep-runtime/src/lib.rs crates/flep-runtime/src/driver.rs crates/flep-runtime/src/job.rs crates/flep-runtime/src/world.rs

/root/repo/target/debug/deps/libflep_runtime-62b4deb1a69daa26.rmeta: crates/flep-runtime/src/lib.rs crates/flep-runtime/src/driver.rs crates/flep-runtime/src/job.rs crates/flep-runtime/src/world.rs

crates/flep-runtime/src/lib.rs:
crates/flep-runtime/src/driver.rs:
crates/flep-runtime/src/job.rs:
crates/flep-runtime/src/world.rs:
