/root/repo/target/debug/deps/device_behavior-77fb830b9eb1ca24.d: crates/gpu-sim/tests/device_behavior.rs

/root/repo/target/debug/deps/device_behavior-77fb830b9eb1ca24: crates/gpu-sim/tests/device_behavior.rs

crates/gpu-sim/tests/device_behavior.rs:
