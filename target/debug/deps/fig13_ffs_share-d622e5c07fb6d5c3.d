/root/repo/target/debug/deps/fig13_ffs_share-d622e5c07fb6d5c3.d: crates/bench/src/bin/fig13_ffs_share.rs

/root/repo/target/debug/deps/fig13_ffs_share-d622e5c07fb6d5c3: crates/bench/src/bin/fig13_ffs_share.rs

crates/bench/src/bin/fig13_ffs_share.rs:
