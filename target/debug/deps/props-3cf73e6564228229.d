/root/repo/target/debug/deps/props-3cf73e6564228229.d: crates/gpu-sim/tests/props.rs

/root/repo/target/debug/deps/props-3cf73e6564228229: crates/gpu-sim/tests/props.rs

crates/gpu-sim/tests/props.rs:
