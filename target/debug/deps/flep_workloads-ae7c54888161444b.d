/root/repo/target/debug/deps/flep_workloads-ae7c54888161444b.d: crates/workloads/src/lib.rs crates/workloads/src/functional.rs crates/workloads/src/sources.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libflep_workloads-ae7c54888161444b.rlib: crates/workloads/src/lib.rs crates/workloads/src/functional.rs crates/workloads/src/sources.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libflep_workloads-ae7c54888161444b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/functional.rs crates/workloads/src/sources.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/functional.rs:
crates/workloads/src/sources.rs:
crates/workloads/src/spec.rs:
