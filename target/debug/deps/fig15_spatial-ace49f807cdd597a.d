/root/repo/target/debug/deps/fig15_spatial-ace49f807cdd597a.d: crates/bench/src/bin/fig15_spatial.rs

/root/repo/target/debug/deps/fig15_spatial-ace49f807cdd597a: crates/bench/src/bin/fig15_spatial.rs

crates/bench/src/bin/fig15_spatial.rs:
