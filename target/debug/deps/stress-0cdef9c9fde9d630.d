/root/repo/target/debug/deps/stress-0cdef9c9fde9d630.d: crates/flep-runtime/tests/stress.rs

/root/repo/target/debug/deps/stress-0cdef9c9fde9d630: crates/flep-runtime/tests/stress.rs

crates/flep-runtime/tests/stress.rs:
