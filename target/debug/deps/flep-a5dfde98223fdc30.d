/root/repo/target/debug/deps/flep-a5dfde98223fdc30.d: crates/flep-core/src/bin/flep.rs

/root/repo/target/debug/deps/flep-a5dfde98223fdc30: crates/flep-core/src/bin/flep.rs

crates/flep-core/src/bin/flep.rs:
