/root/repo/target/debug/deps/props-06fa9e605aea2d93.d: crates/sim-core/tests/props.rs

/root/repo/target/debug/deps/props-06fa9e605aea2d93: crates/sim-core/tests/props.rs

crates/sim-core/tests/props.rs:
