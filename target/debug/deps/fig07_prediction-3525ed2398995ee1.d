/root/repo/target/debug/deps/fig07_prediction-3525ed2398995ee1.d: crates/bench/src/bin/fig07_prediction.rs

/root/repo/target/debug/deps/fig07_prediction-3525ed2398995ee1: crates/bench/src/bin/fig07_prediction.rs

crates/bench/src/bin/fig07_prediction.rs:
