/root/repo/target/debug/deps/fig17_overhead-ec287c8142e49a76.d: crates/bench/src/bin/fig17_overhead.rs

/root/repo/target/debug/deps/fig17_overhead-ec287c8142e49a76: crates/bench/src/bin/fig17_overhead.rs

crates/bench/src/bin/fig17_overhead.rs:
