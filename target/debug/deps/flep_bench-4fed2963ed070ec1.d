/root/repo/target/debug/deps/flep_bench-4fed2963ed070ec1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/flep_bench-4fed2963ed070ec1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
