/root/repo/target/debug/deps/props-18b7cd74f5754136.d: crates/metrics/tests/props.rs

/root/repo/target/debug/deps/props-18b7cd74f5754136: crates/metrics/tests/props.rs

crates/metrics/tests/props.rs:
