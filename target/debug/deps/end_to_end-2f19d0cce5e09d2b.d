/root/repo/target/debug/deps/end_to_end-2f19d0cce5e09d2b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2f19d0cce5e09d2b: tests/end_to_end.rs

tests/end_to_end.rs:
