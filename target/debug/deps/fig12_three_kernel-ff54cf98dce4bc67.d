/root/repo/target/debug/deps/fig12_three_kernel-ff54cf98dce4bc67.d: crates/bench/src/bin/fig12_three_kernel.rs

/root/repo/target/debug/deps/fig12_three_kernel-ff54cf98dce4bc67: crates/bench/src/bin/fig12_three_kernel.rs

crates/bench/src/bin/fig12_three_kernel.rs:
