/root/repo/target/debug/deps/sensitivity-47cfb1d09b3b7d34.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-47cfb1d09b3b7d34: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
