/root/repo/target/debug/deps/flep_metrics-fd40a269b2dec902.d: crates/metrics/src/lib.rs crates/metrics/src/stats.rs

/root/repo/target/debug/deps/flep_metrics-fd40a269b2dec902: crates/metrics/src/lib.rs crates/metrics/src/stats.rs

crates/metrics/src/lib.rs:
crates/metrics/src/stats.rs:
