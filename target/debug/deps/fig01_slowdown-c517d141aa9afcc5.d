/root/repo/target/debug/deps/fig01_slowdown-c517d141aa9afcc5.d: crates/bench/src/bin/fig01_slowdown.rs

/root/repo/target/debug/deps/fig01_slowdown-c517d141aa9afcc5: crates/bench/src/bin/fig01_slowdown.rs

crates/bench/src/bin/fig01_slowdown.rs:
