/root/repo/target/debug/deps/flep-453d6beed225f636.d: crates/flep-core/src/bin/flep.rs

/root/repo/target/debug/deps/flep-453d6beed225f636: crates/flep-core/src/bin/flep.rs

crates/flep-core/src/bin/flep.rs:
