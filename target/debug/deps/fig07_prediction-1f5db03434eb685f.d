/root/repo/target/debug/deps/fig07_prediction-1f5db03434eb685f.d: crates/bench/src/bin/fig07_prediction.rs

/root/repo/target/debug/deps/fig07_prediction-1f5db03434eb685f: crates/bench/src/bin/fig07_prediction.rs

crates/bench/src/bin/fig07_prediction.rs:
