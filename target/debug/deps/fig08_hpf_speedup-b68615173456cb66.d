/root/repo/target/debug/deps/fig08_hpf_speedup-b68615173456cb66.d: crates/bench/src/bin/fig08_hpf_speedup.rs

/root/repo/target/debug/deps/fig08_hpf_speedup-b68615173456cb66: crates/bench/src/bin/fig08_hpf_speedup.rs

crates/bench/src/bin/fig08_hpf_speedup.rs:
