/root/repo/target/debug/examples/check_probe-5e668cb058d16e6e.d: crates/sim-core/examples/check_probe.rs

/root/repo/target/debug/examples/check_probe-5e668cb058d16e6e: crates/sim-core/examples/check_probe.rs

crates/sim-core/examples/check_probe.rs:
