/root/repo/target/debug/examples/memory_oversubscription-0fe5e44c0e9de222.d: examples/memory_oversubscription.rs

/root/repo/target/debug/examples/memory_oversubscription-0fe5e44c0e9de222: examples/memory_oversubscription.rs

examples/memory_oversubscription.rs:
