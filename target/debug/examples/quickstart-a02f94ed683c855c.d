/root/repo/target/debug/examples/quickstart-a02f94ed683c855c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a02f94ed683c855c: examples/quickstart.rs

examples/quickstart.rs:
