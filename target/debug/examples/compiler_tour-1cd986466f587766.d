/root/repo/target/debug/examples/compiler_tour-1cd986466f587766.d: examples/compiler_tour.rs

/root/repo/target/debug/examples/compiler_tour-1cd986466f587766: examples/compiler_tour.rs

examples/compiler_tour.rs:
