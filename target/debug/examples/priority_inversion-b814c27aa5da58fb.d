/root/repo/target/debug/examples/priority_inversion-b814c27aa5da58fb.d: examples/priority_inversion.rs

/root/repo/target/debug/examples/priority_inversion-b814c27aa5da58fb: examples/priority_inversion.rs

examples/priority_inversion.rs:
