/root/repo/target/debug/examples/cloud_serving-35fc1fe7d33a5ead.d: examples/cloud_serving.rs

/root/repo/target/debug/examples/cloud_serving-35fc1fe7d33a5ead: examples/cloud_serving.rs

examples/cloud_serving.rs:
